open Openflow

let pkt = Packet.tcp ~src_host:1 ~dst_host:2 ()

let roundtrip msg = Codec.decode (Codec.encode msg)

let check_rt name msg =
  Alcotest.check T_util.message_t name msg (roundtrip msg)

let port_desc : Message.port_desc =
  { port_no = 3; hw_addr = Types.mac_of_host 3; name = "eth3"; up = true; no_flood = false }

let features : Message.features =
  { datapath_id = 42; n_buffers = 256; n_tables = 1; ports = [ port_desc ] }

let test_simple_messages () =
  check_rt "hello" (Message.message ~xid:7 Message.Hello);
  check_rt "echo request"
    (Message.message (Message.Echo_request (Bytes.of_string "ping")));
  check_rt "echo reply"
    (Message.message (Message.Echo_reply (Bytes.of_string "pong")));
  check_rt "features request" (Message.message Message.Features_request);
  check_rt "barrier request" (Message.message ~xid:99 Message.Barrier_request);
  check_rt "barrier reply" (Message.message ~xid:99 Message.Barrier_reply);
  check_rt "error"
    (Message.message (Message.Error (Message.Flow_mod_failed, "table full")))

let test_features_reply () =
  check_rt "features reply" (Message.message (Message.Features_reply features))

let test_packet_in_out () =
  check_rt "packet_in buffered"
    (Message.message
       (Message.Packet_in
          {
            pi_buffer_id = Some 17;
            pi_in_port = 2;
            pi_reason = Message.No_match;
            pi_packet = pkt;
          }));
  check_rt "packet_in unbuffered"
    (Message.message
       (Message.Packet_in
          {
            pi_buffer_id = None;
            pi_in_port = 5;
            pi_reason = Message.Action_to_controller;
            pi_packet = pkt;
          }));
  check_rt "packet_out with payload"
    (Message.message
       (Message.Packet_out
          {
            po_buffer_id = None;
            po_in_port = Some 1;
            po_actions = [ Action.Output Types.port_flood ];
            po_packet = Some pkt;
          }));
  check_rt "packet_out by buffer id"
    (Message.message
       (Message.Packet_out
          {
            po_buffer_id = Some 4;
            po_in_port = None;
            po_actions = [ Action.Output 2; Action.Set_tp_dst 443 ];
            po_packet = None;
          }))

let test_flow_mod () =
  check_rt "flow add"
    (Message.message
       (Message.Flow_mod
          (Message.flow_add ~cookie:5L ~idle_timeout:60 ~priority:1000
             ~notify_when_removed:true
             (Ofp_match.make ~tp_dst:80 ())
             [ Action.Output 2 ])));
  check_rt "flow delete strict"
    (Message.message
       (Message.Flow_mod
          (Message.flow_delete ~strict:true ~priority:5 (Ofp_match.make ~in_port:1 ()))))

let test_flow_removed () =
  check_rt "flow removed"
    (Message.message
       (Message.Flow_removed
          {
            fr_pattern = Ofp_match.make ~tp_dst:80 ();
            fr_cookie = 9L;
            fr_priority = 100;
            fr_reason = Message.Removed_idle;
            fr_duration = 61;
            fr_idle_timeout = 60;
            fr_packet_count = 12;
            fr_byte_count = 1200;
          }))

let test_port_status () =
  check_rt "port status"
    (Message.message (Message.Port_status (Message.Port_modify, port_desc)))

let test_stats () =
  check_rt "flow stats request"
    (Message.message
       (Message.Stats_request (Message.Flow_stats_request Ofp_match.any)));
  check_rt "aggregate request"
    (Message.message
       (Message.Stats_request
          (Message.Aggregate_stats_request (Ofp_match.make ~nw_proto:6 ()))));
  check_rt "port stats request (one port)"
    (Message.message (Message.Stats_request (Message.Port_stats_request (Some 3))));
  check_rt "port stats request (all)"
    (Message.message (Message.Stats_request (Message.Port_stats_request None)));
  check_rt "description request"
    (Message.message (Message.Stats_request Message.Description_request));
  check_rt "flow stats reply"
    (Message.message
       (Message.Stats_reply
          (Message.Flow_stats_reply
             [
               {
                 fs_pattern = Ofp_match.make ~tp_dst:80 ();
                 fs_priority = 10;
                 fs_cookie = 0L;
                 fs_duration = 5;
                 fs_idle_timeout = 60;
                 fs_hard_timeout = 0;
                 fs_packet_count = 3;
                 fs_byte_count = 300;
                 fs_actions = [ Action.Output 1 ];
               };
             ])));
  check_rt "aggregate reply"
    (Message.message
       (Message.Stats_reply
          (Message.Aggregate_stats_reply { packets = 10; bytes = 1000; flows = 2 })));
  check_rt "port stats reply"
    (Message.message
       (Message.Stats_reply
          (Message.Port_stats_reply
             [
               {
                 ps_port_no = 1;
                 ps_rx_packets = 5;
                 ps_tx_packets = 6;
                 ps_rx_bytes = 500;
                 ps_tx_bytes = 600;
                 ps_rx_dropped = 0;
                 ps_tx_dropped = 1;
               };
             ])));
  check_rt "description reply"
    (Message.message (Message.Stats_reply (Message.Description_reply "netsim s1")))

let test_header_fields () =
  let b = Codec.encode (Message.message ~xid:0xabcd Message.Hello) in
  T_util.checki "version byte" 0x01 (Char.code (Bytes.get b 0));
  T_util.checki "length field equals frame size"
    (Bytes.length b)
    ((Char.code (Bytes.get b 2) lsl 8) lor Char.code (Bytes.get b 3))

let test_bad_version () =
  let b = Codec.encode (Message.message Message.Hello) in
  Bytes.set b 0 '\x04';
  T_util.checkb "wrong version rejected" true
    (try
       ignore (Codec.decode b);
       false
     with Codec.Decode_error _ -> true)

let test_truncated () =
  let b = Codec.encode (Message.message (Message.Features_reply features)) in
  let cut = Bytes.sub b 0 (Bytes.length b - 5) in
  T_util.checkb "truncation rejected" true
    (try
       ignore (Codec.decode cut);
       false
     with Codec.Decode_error _ -> true)

(* [encode_into] patches the frame length relative to where the frame
   begins, so encoding onto a dirty writer (the scratch path) appends
   exactly the bytes [encode] would produce into a fresh one. *)
let test_encode_into_dirty_writer () =
  let w = Openflow.Buf.writer ~capacity:8 () in
  Openflow.Buf.raw w (Bytes.of_string "dirty-prefix");
  let msgs =
    [
      Message.message Message.Hello;
      Message.message ~xid:9 (Message.Features_reply features);
      Message.message ~xid:77 (Message.Packet_out
        { po_buffer_id = None; po_in_port = None;
          po_actions = [ Openflow.Action.Output 2 ];
          po_packet = Some (T_util.tcp_packet 1 2) });
    ]
  in
  List.iter
    (fun msg ->
      let base = Openflow.Buf.length w in
      Codec.encode_into w msg;
      let appended =
        Bytes.sub (Openflow.Buf.contents w) base (Openflow.Buf.length w - base)
      in
      T_util.checkb "appended bytes = fresh encode" true
        (Bytes.equal appended (Codec.encode msg));
      T_util.checkb "appended frame decodes" true (Codec.decode appended = msg))
    msgs

let prop_flow_mod_roundtrip =
  QCheck2.Test.make ~name:"flow_mod messages roundtrip" ~count:500
    T_util.Gen.flow_mod (fun fm ->
      let msg = Message.message ~xid:3 (Message.Flow_mod fm) in
      roundtrip msg = msg)

let prop_packet_in_roundtrip =
  QCheck2.Test.make ~name:"packet_in messages roundtrip" ~count:300
    QCheck2.Gen.(pair T_util.Gen.packet (int_range 1 48))
    (fun (p, in_port) ->
      let msg =
        Message.message
          (Message.Packet_in
             {
               pi_buffer_id = (if in_port mod 2 = 0 then Some in_port else None);
               pi_in_port = in_port;
               pi_reason = Message.No_match;
               pi_packet = p;
             })
      in
      roundtrip msg = msg)

let suite =
  [
    Alcotest.test_case "simple messages" `Quick test_simple_messages;
    Alcotest.test_case "features reply" `Quick test_features_reply;
    Alcotest.test_case "packet in/out" `Quick test_packet_in_out;
    Alcotest.test_case "flow mod" `Quick test_flow_mod;
    Alcotest.test_case "flow removed" `Quick test_flow_removed;
    Alcotest.test_case "port status" `Quick test_port_status;
    Alcotest.test_case "statistics" `Quick test_stats;
    Alcotest.test_case "wire header" `Quick test_header_fields;
    Alcotest.test_case "bad version" `Quick test_bad_version;
    Alcotest.test_case "truncated body" `Quick test_truncated;
    Alcotest.test_case "encode_into dirty writer" `Quick
      test_encode_into_dirty_writer;
    QCheck_alcotest.to_alcotest prop_flow_mod_roundtrip;
    QCheck_alcotest.to_alcotest prop_packet_in_roundtrip;
  ]
