module Recovery_policy = Legosdn.Recovery_policy
module Recovery_policy_lang = Legosdn.Recovery_policy_lang
module Event = Controller.Event

let test_default_policy () =
  let p = Recovery_policy.make [] in
  T_util.checkb "default is equivalence" true
    (Recovery_policy.decide p ~app:"x" Event.K_packet_in = Recovery_policy.Equivalence)

let test_first_match_wins () =
  let p =
    Recovery_policy.make
      [
        { Recovery_policy.app = Some "fw"; kind = None; action = Recovery_policy.No_compromise };
        { Recovery_policy.app = Some "fw"; kind = Some Event.K_tick; action = Recovery_policy.Absolute };
      ]
  in
  T_util.checkb "earlier rule shadows later" true
    (Recovery_policy.decide p ~app:"fw" Event.K_tick = Recovery_policy.No_compromise)

let test_wildcards () =
  let p =
    Recovery_policy.make ~default:Recovery_policy.Absolute
      [
        { Recovery_policy.app = None; kind = Some Event.K_switch_down; action = Recovery_policy.No_compromise };
        { Recovery_policy.app = Some "lb"; kind = None; action = Recovery_policy.Equivalence };
      ]
  in
  T_util.checkb "kind wildcard matches any app" true
    (Recovery_policy.decide p ~app:"whatever" Event.K_switch_down = Recovery_policy.No_compromise);
  T_util.checkb "app rule" true
    (Recovery_policy.decide p ~app:"lb" Event.K_packet_in = Recovery_policy.Equivalence);
  T_util.checkb "fallthrough to default" true
    (Recovery_policy.decide p ~app:"other" Event.K_packet_in = Recovery_policy.Absolute)

let test_uniform () =
  let p = Recovery_policy.uniform Recovery_policy.No_compromise in
  List.iter
    (fun kind ->
      T_util.checkb "uniform answers the same" true
        (Recovery_policy.decide p ~app:"any" kind = Recovery_policy.No_compromise))
    Event.all_kinds

let example_text =
  {|
# security apps must never be compromised
app firewall event * => no-compromise
app * event switch_down => equivalence
app learning_switch event packet_in => absolute   # drop poisoned packets
default => equivalence
|}

let test_parse_example () =
  match Recovery_policy_lang.parse example_text with
  | Error e -> Alcotest.failf "parse error: %a" Recovery_policy_lang.pp_error e
  | Ok p ->
      T_util.checki "three rules" 3 (List.length (Recovery_policy.rules p));
      T_util.checkb "firewall protected" true
        (Recovery_policy.decide p ~app:"firewall" Event.K_packet_in = Recovery_policy.No_compromise);
      T_util.checkb "switch_down transformed for others" true
        (Recovery_policy.decide p ~app:"router" Event.K_switch_down = Recovery_policy.Equivalence);
      T_util.checkb "ls packet_in dropped" true
        (Recovery_policy.decide p ~app:"learning_switch" Event.K_packet_in = Recovery_policy.Absolute)

let test_parse_errors () =
  (match Recovery_policy_lang.parse "app x => nope" with
  | Error e -> T_util.checki "error on line 1" 1 e.Recovery_policy_lang.line
  | Ok _ -> Alcotest.fail "should not parse");
  (match Recovery_policy_lang.parse "app x event packet_in => sorta" with
  | Error e ->
      T_util.checkb "names the bad compromise" true
        (String.length e.Recovery_policy_lang.message > 0)
  | Ok _ -> Alcotest.fail "bad compromise accepted");
  (match Recovery_policy_lang.parse "app x event nonsense_kind => absolute" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad kind accepted");
  match Recovery_policy_lang.parse "default => absolute\ndefault => equivalence" with
  | Error e -> T_util.checki "duplicate default flagged" 2 e.Recovery_policy_lang.line
  | Ok _ -> Alcotest.fail "duplicate default accepted"

let test_print_parse_roundtrip () =
  let p = Recovery_policy_lang.parse_exn example_text in
  let p2 = Recovery_policy_lang.parse_exn (Recovery_policy_lang.print p) in
  T_util.checkb "roundtrip equality" true (Recovery_policy.equal p p2)

let policy_gen =
  QCheck2.Gen.(
    let compromise =
      oneofl [ Recovery_policy.No_compromise; Recovery_policy.Absolute; Recovery_policy.Equivalence ]
    in
    let rule =
      let* app = opt (oneofl [ "a"; "b"; "router" ]) in
      let* kind = opt (oneofl Event.all_kinds) in
      let* action = compromise in
      return { Recovery_policy.app; kind; action }
    in
    let* rules = list_size (int_bound 6) rule in
    let* default = compromise in
    return (Recovery_policy.make ~default rules))

let prop_lang_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip for any policy" ~count:300
    policy_gen (fun p ->
      Recovery_policy.equal p (Recovery_policy_lang.parse_exn (Recovery_policy_lang.print p)))

let suite =
  [
    Alcotest.test_case "default policy" `Quick test_default_policy;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "wildcards" `Quick test_wildcards;
    Alcotest.test_case "uniform policy" `Quick test_uniform;
    Alcotest.test_case "parse example" `Quick test_parse_example;
    Alcotest.test_case "parse errors located" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_lang_roundtrip;
  ]
