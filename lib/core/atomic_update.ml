open Openflow
module Checker = Invariants.Checker
module Snapshot = Invariants.Snapshot

type failure =
  | Switch_rejected of Types.switch_id * string
  | Invariant_broken of Checker.violation list

type outcome = Committed | Rolled_back of failure

let apply ?(tracer = Obs.Tracer.noop) ?(invariants = Checker.default) ?checker
    ~net ~engine ~app updates =
  (* Screen first, hypothetically, on a snapshot: newly-introduced
     violations veto the whole batch before a single switch is touched
     (pre-existing damage is not pinned on this update). This also works
     with the delay-buffer engine, whose mid-transaction network state
     would otherwise be unobservable. *)
  let violations =
    Obs.Tracer.with_span tracer Obs.Span.Detection (fun () ->
        match checker with
        | Some eng ->
            Invariants.Incremental.check_flow_mods ~invariants eng updates
        | None ->
            Checker.check_flow_mods ~invariants (Snapshot.of_net net) updates)
  in
  match violations with
  | _ :: _ as violations -> Rolled_back (Invariant_broken violations)
  | [] ->
      let attrs =
        if Obs.Tracer.enabled tracer then
          [ ("app", app); ("updates", string_of_int (List.length updates)) ]
        else []
      in
      Obs.Tracer.with_span tracer ~attrs Obs.Span.Txn_commit (fun () ->
          let txn = engine.Txn_engine.begin_txn ~app in
          let rejection = ref None in
          List.iter
            (fun (sid, fm) ->
              if !rejection = None then
                let replies =
                  txn.Txn_engine.apply (Controller.Command.Flow (sid, fm))
                in
                List.iter
                  (fun (reply : Message.t) ->
                    match reply.payload with
                    | Message.Error (_, text) when !rejection = None ->
                        rejection := Some (Switch_rejected (sid, text))
                    | _ -> ())
                  replies)
            updates;
          match !rejection with
          | Some failure ->
              txn.Txn_engine.abort ();
              Rolled_back failure
          | None ->
              txn.Txn_engine.commit ();
              Committed)

let describe = function
  | Committed -> "committed"
  | Rolled_back (Switch_rejected (sid, text)) ->
      Format.asprintf "rolled back: %a rejected the update (%s)"
        Types.pp_switch sid text
  | Rolled_back (Invariant_broken violations) ->
      Format.asprintf "rolled back: %a"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
           Checker.pp_violation)
        violations
