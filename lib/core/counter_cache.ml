open Openflow

type key = Types.switch_id * Ofp_match.t * int

type entry = { mutable packets : int; mutable bytes : int; mutable stamp : int }

type t = {
  table : (key, entry) Hashtbl.t;
  capacity : int;
  on_evict : unit -> unit;
  mutable tick : int;  (* LRU clock: bumped on every touch *)
  mutable n_evicted : int;
}

let create ?(capacity = 1024) ?(on_evict = fun () -> ()) () =
  if capacity < 1 then invalid_arg "Counter_cache.create: capacity must be >= 1";
  { table = Hashtbl.create 32; capacity; on_evict; tick = 0; n_evicted = 0 }

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* Drop the least-recently-touched identity. A linear scan, but it only
   runs when an insert finds the cache full — never on the stats path. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.n_evicted <- t.n_evicted + 1;
      t.on_evict ()

let credit t sid pattern ~priority ~packets ~bytes =
  let key = (sid, pattern, priority) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.packets <- e.packets + packets;
      e.bytes <- e.bytes + bytes;
      touch t e
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let e = { packets; bytes; stamp = 0 } in
      touch t e;
      Hashtbl.replace t.table key e

let base t sid pattern ~priority =
  match Hashtbl.find_opt t.table (sid, pattern, priority) with
  | Some e ->
      touch t e;
      (e.packets, e.bytes)
  | None -> (0, 0)

let consume t sid pattern ~priority =
  let key = (sid, pattern, priority) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      Hashtbl.remove t.table key;
      Some (e.packets, e.bytes)
  | None -> None

let adjust_reply t sid ~request reply =
  match reply with
  | Message.Flow_stats_reply stats ->
      Message.Flow_stats_reply
        (List.map
           (fun (fs : Message.flow_stat) ->
             let p, b = base t sid fs.fs_pattern ~priority:fs.fs_priority in
             {
               fs with
               fs_packet_count = fs.fs_packet_count + p;
               fs_byte_count = fs.fs_byte_count + b;
             })
           stats)
  | Message.Aggregate_stats_reply agg -> (
      match request with
      | Message.Aggregate_stats_request pattern
      | Message.Flow_stats_request pattern ->
          let extra_p, extra_b =
            Hashtbl.fold
              (fun (s, m, _prio) (e : entry) (ap, ab) ->
                if s = sid && Ofp_match.subsumes pattern m then
                  (ap + e.packets, ab + e.bytes)
                else (ap, ab))
              t.table (0, 0)
          in
          Message.Aggregate_stats_reply
            {
              packets = agg.packets + extra_p;
              bytes = agg.bytes + extra_b;
              flows = agg.flows;
            }
      | Message.Port_stats_request _ | Message.Description_request ->
          (* Request/reply kind mismatch: crediting here (the old
             [Ofp_match.any] fallback) inflated aggregates with every
             banked flow on the switch. *)
          reply)
  | Message.Port_stats_reply _ | Message.Description_reply _ -> reply

let entries t = Hashtbl.length t.table
let evictions t = t.n_evicted
