(** Statistics monitor — the cloud-provisioning/monitoring category of
    Table 2 (Stratos-like visibility).

    On every tick it polls flow statistics from every connected switch and
    accumulates per-switch byte counts. This is the application that
    observes NetLog's counter-cache: after a rollback restores flows with
    zeroed hardware counters, the monitor's readings must not regress. *)

include Controller.App_sig.APP

val bytes_seen : state -> Openflow.Types.switch_id -> int
(** Latest per-switch byte total observed. *)

val polls_sent : state -> int
val regressions : state -> int
(** Times a switch's byte total went backwards — should stay 0 when stats
    flow through NetLog's counter cache. *)
