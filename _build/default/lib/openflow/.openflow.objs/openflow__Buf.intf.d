lib/openflow/buf.mli:
