lib/apps/firewall.mli: Controller
