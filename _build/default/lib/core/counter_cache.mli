(** NetLog's counter-cache (§3.2).

    OpenFlow cannot install a flow with non-zero counters, so when NetLog
    restores a deleted flow it re-adds it with zeroed counters and banks the
    old values here; statistics replies that pass through NetLog are then
    corrected by adding the banked base back, so applications never observe
    the counter reset. *)

open Openflow

type t

val create : unit -> t

val credit :
  t ->
  Types.switch_id ->
  Ofp_match.t ->
  priority:int ->
  packets:int ->
  bytes:int ->
  unit
(** Bank counters for a rule identity (accumulates across repeated
    restores). *)

val base : t -> Types.switch_id -> Ofp_match.t -> priority:int -> int * int
(** Banked (packets, bytes) for the rule; (0, 0) if never credited. *)

val adjust_reply :
  t ->
  Types.switch_id ->
  request:Message.stats_request ->
  Message.stats_reply ->
  Message.stats_reply
(** Correct a statistics reply from the given switch: per-flow stats get
    their banked base added; aggregate stats get the sum of the bases of
    rules subsumed by the request pattern. Port and description replies are
    returned unchanged. *)

val entries : t -> int
(** Number of banked rule identities. *)
