open Openflow

type port_state = {
  port_no : Types.port_no;
  hw_addr : Types.mac;
  mutable port_up : bool;
  mutable no_flood : bool;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
  mutable rx_dropped : int;
  mutable tx_dropped : int;
}

type t = {
  id : Types.switch_id;
  table : Flow_table.t;
  mutable up : bool;
  ports : (int, port_state) Hashtbl.t;
  buffers : (int, Packet.t * Types.port_no) Hashtbl.t;
  mutable next_buffer_id : int;
  seen_xids : (Types.xid, unit) Hashtbl.t;
  seen_order : Types.xid Queue.t;
  mutable dups_suppressed : int;
  mutable cfg_gen : int;
  mutable master : int option;
  mutable slave_rejected : int;
}

(* Bound on the per-switch dedup window: enough to cover any plausible
   retransmission window while keeping reboot-survivor memory small. *)
let dedup_window = 4096

let port_mac sid port_no = Types.mac_of_octets 0x0a 0x00 0x00 sid 0x00 port_no

let create ~id ~port_nos =
  let ports = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace ports n
        {
          port_no = n;
          hw_addr = port_mac id n;
          port_up = true;
          no_flood = false;
          rx_packets = 0;
          tx_packets = 0;
          rx_bytes = 0;
          tx_bytes = 0;
          rx_dropped = 0;
          tx_dropped = 0;
        })
    port_nos;
  {
    id;
    table = Flow_table.create ();
    up = true;
    ports;
    buffers = Hashtbl.create 8;
    next_buffer_id = 1;
    seen_xids = Hashtbl.create 64;
    seen_order = Queue.create ();
    dups_suppressed = 0;
    cfg_gen = 0;
    master = None;
    slave_rejected = 0;
  }

(* Forwarding-relevant configuration version: bumps on any port or liveness
   change, and folds in the flow table's own mutation counter. Both terms
   only grow, so equality of [version] across two instants means nothing
   that affects forwarding behaviour changed in between. *)
let version t = t.cfg_gen + Flow_table.generation t.table

let set_up t ~up =
  if t.up <> up then begin
    t.up <- up;
    t.cfg_gen <- t.cfg_gen + 1
  end

(* Exactly-once support for a lossy control channel: state-altering
   messages carry unique non-zero xids, and a retransmitted xid must not
   re-apply its effects. Returns [true] the first time an xid is seen. *)
let register_xid t xid =
  if xid = 0 then true
  else if Hashtbl.mem t.seen_xids xid then begin
    t.dups_suppressed <- t.dups_suppressed + 1;
    false
  end
  else begin
    Hashtbl.replace t.seen_xids xid ();
    Queue.push xid t.seen_order;
    if Queue.length t.seen_order > dedup_window then
      Hashtbl.remove t.seen_xids (Queue.pop t.seen_order);
    true
  end

let reset_dedup t =
  Hashtbl.reset t.seen_xids;
  Queue.clear t.seen_order

(* OF 1.2-style controller roles, collapsed to the one bit that matters
   here: when a master is designated, state-altering messages from any
   other controller are rejected with an error instead of applied. *)
let set_master t controller = t.master <- controller

let accepts_state_altering t = function
  | None -> true
  | Some from -> ( match t.master with None -> true | Some m -> m = from)

let has_seen_xid t xid = Hashtbl.mem t.seen_xids xid

let port t n = Hashtbl.find_opt t.ports n

let port_list t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.ports []
  |> List.sort (fun a b -> compare a.port_no b.port_no)

let set_port t n ~up =
  match port t n with
  | None -> false
  | Some p ->
      if p.port_up <> up then t.cfg_gen <- t.cfg_gen + 1;
      p.port_up <- up;
      true

let port_desc (p : port_state) : Message.port_desc =
  {
    port_no = p.port_no;
    hw_addr = p.hw_addr;
    name = Printf.sprintf "eth%d" p.port_no;
    up = p.port_up;
    no_flood = p.no_flood;
  }

let features t : Message.features =
  {
    datapath_id = t.id;
    n_buffers = 256;
    n_tables = 1;
    ports = List.map port_desc (port_list t);
  }

type forward_result = {
  transmits : (Packet.t * Types.port_no) list;
  punts : Message.packet_in list;
  matched : bool;
}

let empty_forward = { transmits = []; punts = []; matched = false }

let merge_forward a b =
  {
    transmits = a.transmits @ b.transmits;
    punts = a.punts @ b.punts;
    matched = a.matched || b.matched;
  }

let buffer_packet t pkt in_port =
  let id = t.next_buffer_id in
  t.next_buffer_id <- t.next_buffer_id + 1;
  Hashtbl.replace t.buffers id (pkt, in_port);
  id

(* Expand one staged (packet, port) pair: reserved ports become concrete
   port lists; down or missing ports drop the copy. *)
let resolve_output t ~in_port (pkt, out) =
  let up_ports_except ~honor_no_flood skip =
    port_list t
    |> List.filter (fun p ->
           p.port_up && p.port_no <> skip
           && not (honor_no_flood && p.no_flood))
    |> List.map (fun p -> p.port_no)
  in
  if out = Types.port_flood then
    (* FLOOD honors OFPPC_NO_FLOOD (the spanning-tree hook); ALL does not. *)
    ([], List.map (fun p -> (pkt, p)) (up_ports_except ~honor_no_flood:true in_port))
  else if out = Types.port_all then
    ([], List.map (fun p -> (pkt, p)) (up_ports_except ~honor_no_flood:false in_port))
  else if out = Types.port_in_port then ([], [ (pkt, in_port) ])
  else if out = Types.port_controller then
    ( [
        {
          Message.pi_buffer_id = None;
          pi_in_port = in_port;
          pi_reason = Message.Action_to_controller;
          pi_packet = pkt;
        };
      ],
      [] )
  else if out = Types.port_local || out = Types.port_none then ([], [])
  else
    match port t out with
    | Some p when p.port_up -> ([], [ (pkt, out) ])
    | Some p ->
        p.tx_dropped <- p.tx_dropped + 1;
        ([], [])
    | None -> ([], [])

let run_actions t ~in_port actions pkt =
  let staged = Action.apply_staged actions pkt in
  List.fold_left
    (fun acc copy ->
      let punts, transmits = resolve_output t ~in_port copy in
      merge_forward acc { transmits; punts; matched = true })
    empty_forward staged

let process_packet t ~now ~in_port pkt =
  let rx =
    match port t in_port with
    | Some p when p.port_up ->
        p.rx_packets <- p.rx_packets + 1;
        p.rx_bytes <- p.rx_bytes + Packet.size pkt;
        true
    | Some p ->
        p.rx_dropped <- p.rx_dropped + 1;
        false
    | None -> false
  in
  if not (rx && t.up) then empty_forward
  else
    match Flow_table.lookup t.table ~now ~in_port pkt with
    | Some entry ->
        Flow_entry.account entry ~now pkt;
        run_actions t ~in_port entry.actions pkt
    | None ->
        let buffer_id = buffer_packet t pkt in_port in
        {
          empty_forward with
          punts =
            [
              {
                pi_buffer_id = Some buffer_id;
                pi_in_port = in_port;
                pi_reason = Message.No_match;
                pi_packet = pkt;
              };
            ];
        }

let account_tx t out pkt =
  match port t out with
  | Some p ->
      p.tx_packets <- p.tx_packets + 1;
      p.tx_bytes <- p.tx_bytes + Packet.size pkt
  | None -> ()

let flow_removed_messages ~now reason entries =
  entries
  |> List.filter (fun (e : Flow_entry.t) -> e.notify_when_removed)
  |> List.map (fun e ->
         Message.message (Message.Flow_removed (Flow_entry.to_flow_removed ~now reason e)))

let apply_flow_mod t ~now (fm : Message.flow_mod) =
  match fm.command with
  | Add ->
      Flow_table.add t.table (Flow_entry.of_flow_mod ~now fm);
      []
  | Modify | Modify_strict ->
      let strict = fm.command = Modify_strict in
      let hit =
        Flow_table.modify t.table ~strict fm.pattern ~priority:fm.priority
          fm.actions
      in
      if not hit then Flow_table.add t.table (Flow_entry.of_flow_mod ~now fm);
      []
  | Delete | Delete_strict ->
      let strict = fm.command = Delete_strict in
      let gone =
        Flow_table.delete t.table ~strict ?out_port:fm.out_port fm.pattern
          ~priority:fm.priority
      in
      flow_removed_messages ~now Message.Removed_delete gone

let take_buffer t = function
  | None -> None
  | Some id ->
      let found = Hashtbl.find_opt t.buffers id in
      if found <> None then Hashtbl.remove t.buffers id;
      found

let handle_message ?from t ~now (msg : Message.t) =
  let reply payload = Message.message ~xid:msg.xid payload in
  if not t.up then
    ([ reply (Message.Error (Message.Bad_request, "switch is down")) ],
     empty_forward)
  else if
    Message.is_state_altering msg.payload
    && not (accepts_state_altering t from)
  then begin
    t.slave_rejected <- t.slave_rejected + 1;
    ([ reply (Message.Error (Message.Bad_request, "controller is slave")) ],
     empty_forward)
  end
  else if Message.is_state_altering msg.payload && not (register_xid t msg.xid)
  then
    (* Retransmit of an already-applied message: idempotent, no effects.
       A barrier request that follows is still answered normally. *)
    ([], empty_forward)
  else
    match msg.payload with
    | Hello -> ([ reply Message.Hello ], empty_forward)
    | Echo_request b -> ([ reply (Message.Echo_reply b) ], empty_forward)
    | Features_request ->
        ([ reply (Message.Features_reply (features t)) ], empty_forward)
    | Barrier_request -> ([ reply Message.Barrier_reply ], empty_forward)
    | Port_mod pm -> (
        match port t pm.Message.pm_port_no with
        | Some p ->
            p.no_flood <- pm.Message.pm_no_flood;
            ([], empty_forward)
        | None ->
            ( [ reply (Message.Error (Message.Port_mod_failed, "no such port")) ],
              empty_forward ))
    | Flow_mod fm ->
        let removed = apply_flow_mod t ~now fm in
        (* A flow-mod referencing a buffered packet applies its actions to
           that packet immediately (OF 1.0 §4.6). *)
        let fwd =
          match take_buffer t fm.buffer_id with
          | Some (pkt, in_port) when fm.command = Add ->
              run_actions t ~in_port fm.actions pkt
          | Some _ | None -> empty_forward
        in
        (removed, fwd)
    | Packet_out po -> (
        let from_buffer = take_buffer t po.po_buffer_id in
        let packet =
          match (from_buffer, po.po_packet) with
          | Some (pkt, _), _ -> Some pkt
          | None, inline -> inline
        in
        match packet with
        | None ->
            ( [ reply (Message.Error (Message.Bad_request, "packet_out without payload")) ],
              empty_forward )
        | Some pkt ->
            let in_port =
              match po.po_in_port with
              | Some p -> p
              | None -> Types.port_none
            in
            ([], run_actions t ~in_port po.po_actions pkt))
    | Stats_request req ->
        let sr =
          match req with
          | Flow_stats_request pattern ->
              let stats =
                Flow_table.entries t.table
                |> List.filter (fun (e : Flow_entry.t) ->
                       Ofp_match.subsumes pattern e.pattern)
                |> List.map (Flow_entry.to_flow_stat ~now)
              in
              Message.Flow_stats_reply stats
          | Aggregate_stats_request pattern ->
              let matching =
                Flow_table.entries t.table
                |> List.filter (fun (e : Flow_entry.t) ->
                       Ofp_match.subsumes pattern e.pattern)
              in
              Message.Aggregate_stats_reply
                {
                  packets =
                    List.fold_left
                      (fun acc (e : Flow_entry.t) -> acc + e.packet_count)
                      0 matching;
                  bytes =
                    List.fold_left
                      (fun acc (e : Flow_entry.t) -> acc + e.byte_count)
                      0 matching;
                  flows = List.length matching;
                }
          | Port_stats_request filter ->
              let selected =
                match filter with
                | None -> port_list t
                | Some n -> Option.to_list (port t n)
              in
              Message.Port_stats_reply
                (List.map
                   (fun (p : port_state) ->
                     {
                       Message.ps_port_no = p.port_no;
                       ps_rx_packets = p.rx_packets;
                       ps_tx_packets = p.tx_packets;
                       ps_rx_bytes = p.rx_bytes;
                       ps_tx_bytes = p.tx_bytes;
                       ps_rx_dropped = p.rx_dropped;
                       ps_tx_dropped = p.tx_dropped;
                     })
                   selected)
          | Description_request ->
              Message.Description_reply
                (Printf.sprintf "legosdn-netsim switch s%d" t.id)
        in
        ([ reply (Message.Stats_reply sr) ], empty_forward)
    | Echo_reply _ | Features_reply _ | Packet_in _ | Flow_removed _
    | Port_status _ | Stats_reply _ | Barrier_reply | Error _ ->
        ( [ reply (Message.Error (Message.Bad_request, "not a controller-to-switch message")) ],
          empty_forward )

let expire_flows t ~now =
  Flow_table.expire t.table ~now
  |> List.filter_map (fun ((e : Flow_entry.t), reason) ->
         if e.notify_when_removed then
           Some
             (Message.message
                (Message.Flow_removed (Flow_entry.to_flow_removed ~now reason e)))
         else None)

let pp fmt t =
  Format.fprintf fmt "@[<v>switch s%d up=%b ports=%d@,%a@]" t.id t.up
    (Hashtbl.length t.ports) Flow_table.pp t.table
