open Openflow

(* Entries are kept sorted by decreasing priority; within a priority level,
   insertion order is preserved, which makes lookups deterministic. *)
type t = { mutable rules : Flow_entry.t list }

let create () = { rules = [] }

let size t = List.length t.rules
let entries t = t.rules
let clear t = t.rules <- []

let insert_sorted entry rules =
  let rec go = function
    | [] -> [ entry ]
    | (e : Flow_entry.t) :: rest as all ->
        if entry.Flow_entry.priority > e.priority then entry :: all
        else e :: go rest
  in
  go rules

let add t entry =
  let without =
    List.filter (fun e -> not (Flow_entry.same_rule e entry)) t.rules
  in
  t.rules <- insert_sorted entry without

let touches ~strict pattern ~priority (e : Flow_entry.t) =
  if strict then priority = e.priority && Ofp_match.equal pattern e.pattern
  else Ofp_match.subsumes pattern e.pattern

let modify t ~strict pattern ~priority actions =
  let hit = ref false in
  t.rules <-
    List.map
      (fun (e : Flow_entry.t) ->
        if touches ~strict pattern ~priority e then begin
          hit := true;
          { e with actions }
        end
        else e)
      t.rules;
  !hit

let delete t ~strict ?out_port pattern ~priority =
  let port_ok (e : Flow_entry.t) =
    match out_port with
    | None -> true
    | Some p -> List.mem p (Action.outputs e.actions)
  in
  let gone, kept =
    List.partition
      (fun e -> touches ~strict pattern ~priority e && port_ok e)
      t.rules
  in
  t.rules <- kept;
  gone

let lookup t ~now ~in_port pkt =
  let live (e : Flow_entry.t) = Flow_entry.expiry_reason e ~now = None in
  List.find_opt
    (fun e -> live e && Flow_entry.matches e ~in_port pkt)
    t.rules

let expire t ~now =
  let expired, kept =
    List.partition_map
      (fun e ->
        match Flow_entry.expiry_reason e ~now with
        | Some reason -> Left (e, reason)
        | None -> Right e)
      t.rules
  in
  t.rules <- kept;
  expired

let find_exact t pattern ~priority =
  List.find_opt
    (fun (e : Flow_entry.t) ->
      e.priority = priority && Ofp_match.equal e.pattern pattern)
    t.rules

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list Flow_entry.pp)
    t.rules
