lib/netsim/clock.ml: Printf
