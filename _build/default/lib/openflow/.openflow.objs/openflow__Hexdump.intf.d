lib/openflow/hexdump.mli: Format Message
