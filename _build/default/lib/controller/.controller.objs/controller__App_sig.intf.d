lib/controller/app_sig.mli: Command Event Openflow Types
