lib/core/policy_lang.ml: Buffer Controller Format Fun List Option Policy Printf String
