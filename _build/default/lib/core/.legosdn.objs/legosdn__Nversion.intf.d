lib/core/nversion.mli: App_sig Controller
