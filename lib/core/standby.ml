module Net = Netsim.Net
module Clock = Netsim.Clock

module Chunk_store = Checkpoint.Chunk_store

type t = {
  network : Net.t;
  modules : (module Controller.App_sig.APP) list;
  config : Runtime.config;
  sync_interval : float;
  mutable active : Runtime.t;
  (* app -> latest shipped snapshot, as a manifest into [store]: a sync
     only ships the chunks that changed since the previous one. *)
  mutable shipped : (string * Chunk_store.manifest) list;
  store : Chunk_store.t;
  mutable n_shipped_bytes : int;
  mutable synced_at : float option;
  mutable n_failovers : int;
}

let create ?(config = Runtime.default_config) ?(sync_interval = 1.) network
    modules =
  {
    network;
    modules;
    config;
    sync_interval;
    active = Runtime.create ~config network modules;
    shipped = [];
    store = Chunk_store.create ();
    n_shipped_bytes = 0;
    synced_at = None;
    n_failovers = 0;
  }

let runtime t = t.active

let now t = Clock.now (Net.clock t.network)

let sync t =
  let fresh =
    List.map
      (fun box ->
        let manifest, w =
          Chunk_store.store t.store (Sandbox.snapshot_bytes box)
        in
        t.n_shipped_bytes <- t.n_shipped_bytes + w.Chunk_store.written_bytes;
        (Sandbox.name box, manifest))
      (Runtime.sandboxes t.active)
  in
  (* Release the superseded manifests only after the fresh ones hold their
     references, so chunks shared across syncs survive the swap. *)
  let previous = t.shipped in
  t.shipped <- fresh;
  List.iter (fun (_, m) -> Chunk_store.release t.store m) previous;
  t.synced_at <- Some (now t)

let maybe_sync t =
  let due =
    match t.synced_at with
    | None -> true
    | Some at -> now t -. at >= t.sync_interval
  in
  if due then sync t

let step t =
  Runtime.step t.active;
  maybe_sync t

let last_sync_at t = t.synced_at

let fail_primary t =
  t.n_failovers <- t.n_failovers + 1;
  (* The dead controller's pending switch messages died with it. *)
  ignore (Net.poll t.network);
  (* Switches remember applied xids: the successor must continue the xid
     sequence or its first commands would look like retransmissions. *)
  let xid_base =
    match Runtime.netlog t.active with
    | Some nl -> Netlog.next_xid nl
    | None -> 1
  in
  let fresh = Runtime.create ~config:t.config ~xid_base t.network t.modules in
  List.iter
    (fun box ->
      match List.assoc_opt (Sandbox.name box) t.shipped with
      | Some manifest ->
          Sandbox.restore_bytes box (Chunk_store.materialize t.store manifest)
      | None -> ())
    (Runtime.sandboxes fresh);
  t.active <- fresh;
  (* Take over: re-handshake with every live switch. *)
  Runtime.upgrade_controller fresh;
  t

let failovers t = t.n_failovers
let shipped_bytes t = t.n_shipped_bytes
let chunk_store t = t.store
