examples/resilient_routing.ml: Apps Clock Controller Format Legosdn List Net Netsim Openflow Printf Topo_gen Topology
