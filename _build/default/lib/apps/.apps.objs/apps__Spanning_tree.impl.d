lib/apps/spanning_tree.ml: App_sig Command Controller Event Hashtbl List Openflow Option Queue Set Types
