(** Per-application resource limits (§3.4).

    Monolithic controllers cannot stop a rogue application from consuming
    the whole server; with AppVisor isolation, limits become enforceable.
    The enforceable dimensions in this reproduction are the two that exist
    in the simulation: application state size (memory) and command volume
    per event (control-channel bandwidth). *)

type limits = {
  max_state_bytes : int option;
      (** Cap on the serialized application state. *)
  max_commands_per_event : int option;
      (** Cap on commands emitted while handling one event. *)
}

type breach =
  | State_too_large of { used : int; limit : int }
  | Too_many_commands of { emitted : int; limit : int }

val unlimited : limits

val check :
  limits -> state_bytes:(unit -> int) -> commands_emitted:int -> breach list
(** Every limit the measurements exceed. [state_bytes] is forced only
    when [max_state_bytes] is set: measuring it serializes the entire
    application state, far too expensive for the per-event hot path when
    no limit is being enforced. *)

val describe : breach -> string
