test/t_workload.ml: Alcotest Apps Controller Legosdn List Netsim T_util Topo_gen Topology Workload
