lib/invariants/snapshot.ml: Action Hashtbl Int List Map Message Netsim Openflow Types
