(* Seeded scenario generation. One integer seed determines the whole
   scenario; together with the simulator's virtual clock this makes every
   fuzz iteration reproducible bit-for-bit. The menus are deliberately
   conservative: every generated scenario must be one the oracles hold
   for, so e.g. cyclic topologies (where flooding apps legitimately loop)
   are left to hand-written specs rather than drawn here. *)

module Recovery_policy = Legosdn.Recovery_policy

(* Distinct stream from every other seeded component in the repo
   (Topo_gen.jellyfish, Traffic.uniform_pairs, Channel) so a fuzz seed
   does not accidentally correlate with a channel seed. *)
let rng_of_seed seed = Random.State.make [| 0xF0221; seed |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let float_in rng lo hi = lo +. Random.State.float rng (hi -. lo)

let int_in rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let topos = [| Spec.Linear 2; Spec.Linear 3; Spec.Linear 4; Spec.Star 2;
               Spec.Star 3; Spec.Star 4; Spec.Tree { depth = 2; fanout = 2 } |]

(* learning_switch always runs: it is what turns traffic into flow-mods,
   which is what the convergence and atomicity oracles feed on. *)
let app_menus =
  [|
    [ "learning_switch" ];
    [ "learning_switch"; "monitor" ];
    [ "learning_switch"; "firewall" ];
    [ "learning_switch"; "monitor"; "firewall" ];
    [ "learning_switch"; "policy_firewall" ];
    [ "policy_router"; "policy_firewall" ];
  |]

let gen_element rng ~duration =
  let roll = Random.State.int rng 100 in
  if roll < 50 then
    Spec.Flow
      {
        src = Random.State.int rng 1000;
        dst = Random.State.int rng 1000;
        start = float_in rng 0.5 (duration -. 1.5);
        packets = int_in rng 1 3;
        dport = pick rng [| 80; 8080; 1234 |];
      }
  else if roll < 62 then
    Spec.Link_flap
      {
        link = Random.State.int rng 1000;
        down_at = float_in rng 1.0 (duration -. 2.0);
        downtime = float_in rng 0.5 2.0;
      }
  else if roll < 72 then
    Spec.Switch_reboot
      {
        sw = Random.State.int rng 1000;
        down_at = float_in rng 1.0 (duration -. 2.0);
        downtime = float_in rng 0.5 2.0;
      }
  else if roll < 82 then
    Spec.Partition
      {
        sw = Random.State.int rng 1000;
        start = float_in rng 1.0 (duration -. 2.0);
        duration = float_in rng 0.5 2.0;
      }
  else if roll < 92 then
    Spec.Loss_burst
      {
        sw = Random.State.int rng 1000;
        loss = float_in rng 0.5 0.9;
        start = float_in rng 1.0 (duration -. 2.0);
        duration = float_in rng 0.5 2.0;
      }
  else
    Spec.Inject_bug
      { slot = Random.State.int rng 8; bug = Random.State.int rng 1000 }

let scenario seed =
  let rng = rng_of_seed seed in
  let topo = pick rng topos in
  let apps = pick rng app_menus in
  let base_loss =
    if Random.State.int rng 100 < 40 then 0. else float_in rng 0.05 0.3
  in
  let duplicate = if Random.State.int rng 100 < 70 then 0. else 0.1 in
  let delay = if Random.State.int rng 100 < 80 then 0. else 0.02 in
  (* Only the reliable layer can mask channel loss; an unreliable run over
     a lossy channel is still a valid scenario (the convergence and
     atomicity oracles simply do not apply to it). *)
  let reliable = Random.State.int rng 100 < 80 in
  let max_retries = int_in rng 4 8 in
  let checkpoint_every = pick rng [| 1; 2; 5 |] in
  let policy =
    let r = Random.State.int rng 100 in
    if r < 60 then Recovery_policy.Equivalence
    else if r < 85 then Recovery_policy.Absolute
    else Recovery_policy.No_compromise
  in
  let duration = float_in rng 8.0 16.0 in
  let n_elements = int_in rng 3 10 in
  let elements = List.init n_elements (fun _ -> gen_element rng ~duration) in
  {
    Spec.seed;
    topo;
    apps;
    base_loss;
    duplicate;
    delay;
    reliable;
    base_timeout = 0.05;
    max_retries;
    checkpoint_every;
    policy;
    duration;
    (* Single controller and solo sandboxes by default: no extra RNG
       draws here, so adding the cluster and nversion fields does not
       shift any existing seed's scenario. Cluster scenarios come from
       the kill-leader plant; voting panels from the byz-variant plant. *)
    replicas = 1;
    election_lo = 0.15;
    election_hi = 0.3;
    nversion = 1;
    elements;
  }
