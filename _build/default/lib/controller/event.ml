open Openflow

type t =
  | Switch_up of Types.switch_id * Message.features
  | Switch_down of Types.switch_id
  | Port_status of Types.switch_id * Message.port_status_reason * Message.port_desc
  | Link_up of link
  | Link_down of link
  | Packet_in of Types.switch_id * Message.packet_in
  | Flow_removed of Types.switch_id * Message.flow_removed
  | Stats_reply of Types.switch_id * Types.xid * Message.stats_reply
  | Tick of float

and link = {
  src_switch : Types.switch_id;
  src_port : Types.port_no;
  dst_switch : Types.switch_id;
  dst_port : Types.port_no;
}

type kind =
  | K_switch_up
  | K_switch_down
  | K_port_status
  | K_link_up
  | K_link_down
  | K_packet_in
  | K_flow_removed
  | K_stats_reply
  | K_tick

let kind_of = function
  | Switch_up _ -> K_switch_up
  | Switch_down _ -> K_switch_down
  | Port_status _ -> K_port_status
  | Link_up _ -> K_link_up
  | Link_down _ -> K_link_down
  | Packet_in _ -> K_packet_in
  | Flow_removed _ -> K_flow_removed
  | Stats_reply _ -> K_stats_reply
  | Tick _ -> K_tick

let all_kinds =
  [
    K_switch_up;
    K_switch_down;
    K_port_status;
    K_link_up;
    K_link_down;
    K_packet_in;
    K_flow_removed;
    K_stats_reply;
    K_tick;
  ]

let kind_name = function
  | K_switch_up -> "switch_up"
  | K_switch_down -> "switch_down"
  | K_port_status -> "port_status"
  | K_link_up -> "link_up"
  | K_link_down -> "link_down"
  | K_packet_in -> "packet_in"
  | K_flow_removed -> "flow_removed"
  | K_stats_reply -> "stats_reply"
  | K_tick -> "tick"

let switch_of = function
  | Switch_up (sid, _)
  | Switch_down sid
  | Port_status (sid, _, _)
  | Packet_in (sid, _)
  | Flow_removed (sid, _)
  | Stats_reply (sid, _, _) ->
      Some sid
  | Link_up _ | Link_down _ | Tick _ -> None

let equal a b = a = b

let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)

let pp fmt = function
  | Switch_up (sid, f) ->
      Format.fprintf fmt "switch_up(%a, %d ports)" Types.pp_switch sid
        (List.length f.Message.ports)
  | Switch_down sid -> Format.fprintf fmt "switch_down(%a)" Types.pp_switch sid
  | Port_status (sid, _, desc) ->
      Format.fprintf fmt "port_status(%a:%a up=%b)" Types.pp_switch sid
        Types.pp_port desc.Message.port_no desc.Message.up
  | Link_up l ->
      Format.fprintf fmt "link_up(%a:%d <-> %a:%d)" Types.pp_switch
        l.src_switch l.src_port Types.pp_switch l.dst_switch l.dst_port
  | Link_down l ->
      Format.fprintf fmt "link_down(%a:%d <-> %a:%d)" Types.pp_switch
        l.src_switch l.src_port Types.pp_switch l.dst_switch l.dst_port
  | Packet_in (sid, pi) ->
      Format.fprintf fmt "packet_in(%a:%a %a)" Types.pp_switch sid
        Types.pp_port pi.Message.pi_in_port Packet.pp pi.Message.pi_packet
  | Flow_removed (sid, fr) ->
      Format.fprintf fmt "flow_removed(%a %a)" Types.pp_switch sid Ofp_match.pp
        fr.Message.fr_pattern
  | Stats_reply (sid, xid, _) ->
      Format.fprintf fmt "stats_reply(%a #%d)" Types.pp_switch sid xid
  | Tick now -> Format.fprintf fmt "tick(%g)" now
