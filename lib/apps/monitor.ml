open Openflow
open Controller

module Sid_map = Map.Make (Int)

type state = {
  totals : int Sid_map.t;  (* latest byte totals per switch *)
  n_polls : int;
  n_regressions : int;
}

let name = "monitor"
let subscriptions = [ Event.K_tick; Event.K_stats_reply ]

let init () = { totals = Sid_map.empty; n_polls = 0; n_regressions = 0 }

let bytes_seen st sid = Option.value (Sid_map.find_opt sid st.totals) ~default:0
let polls_sent st = st.n_polls
let regressions st = st.n_regressions

let handle (ctx : App_sig.context) st = function
  | Event.Tick _ ->
      let switches = App_sig.switches ctx in
      let polls =
        List.map
          (fun sid ->
            Command.Stats (sid, Message.Aggregate_stats_request Ofp_match.any))
          switches
      in
      ({ st with n_polls = st.n_polls + List.length polls }, polls)
  | Event.Stats_reply (sid, _xid, Message.Aggregate_stats_reply agg) ->
      let previous = bytes_seen st sid in
      let st =
        {
          st with
          totals = Sid_map.add sid agg.bytes st.totals;
          n_regressions =
            (if agg.bytes < previous then st.n_regressions + 1
             else st.n_regressions);
        }
      in
      (st, [])
  | _ -> (st, [])
