lib/core/ticket.mli: Controller Format
