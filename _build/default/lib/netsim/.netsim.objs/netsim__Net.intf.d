lib/netsim/net.mli: Clock Message Openflow Packet Sw Topology Types
