module App_sig = Controller.App_sig
(* The dispatch-engine differential: the sharded, batched engine must be
   observationally equivalent to the sequential engine — which stays
   in-tree precisely to serve as the executable specification. Scenarios
   (topology, channel faults, traffic, injected app bugs) come from the
   fuzzer's seed-deterministic generator; equality is demanded on the full
   equivalence surface: oracle verdict, the dispatched event stream, final
   switch flow tables, controller shadow intent, the NetLog transaction
   journal, and the semantic metrics (events, crashes, commits, aborts).

   Plus focused units for the pieces the property leans on: the k-way
   minimum-sequence merge reconstructing arrival order for any shard
   count, and Tick acting as a batch barrier. *)

open Openflow
module Runtime = Legosdn.Runtime
module Dispatch = Legosdn.Dispatch
module Event = Controller.Event
module Runner = Check.Runner
module SGen = Check.Gen

let pkt_in sw src dst =
  Event.Packet_in
    ( sw,
      {
        Message.pi_buffer_id = None;
        pi_in_port = 1;
        pi_reason = Message.No_match;
        pi_packet = Packet.tcp ~src_host:src ~dst_host:dst ~dport:80 ();
      } )

(* ------------------------------------------------------------------ *)
(* Dispatch queue units *)

let drain_all ?(max_batch = 64) q =
  let rec go acc =
    match Dispatch.next_batch q ~max_batch with
    | [] -> List.rev acc
    | batch -> go (batch :: acc)
  in
  go []

let test_merge_restores_arrival_order () =
  List.iter
    (fun shards ->
      let q = Dispatch.create ~shards in
      let events =
        List.init 40 (fun i -> pkt_in ((i mod 5) + 1) (i mod 7) ((i + 1) mod 7))
      in
      List.iter (Dispatch.push q) events;
      T_util.checki "queued" 40 (Dispatch.length q);
      let batches = drain_all ~max_batch:7 q in
      let drained = List.concat_map (List.map snd) batches in
      T_util.checkb
        (Printf.sprintf "shards=%d drains in arrival order" shards)
        true (drained = events);
      List.iter
        (List.iter (fun (s, ev) ->
             T_util.checki "annotated with its shard" (Dispatch.shard_of q ev)
               s))
        batches)
    [ 1; 2; 3; 8; 16 ]

let test_tick_is_a_batch_barrier () =
  let q = Dispatch.create ~shards:4 in
  let e1 = pkt_in 1 0 1 and e2 = pkt_in 2 1 2 and e3 = pkt_in 3 2 3 in
  let tick = Event.Tick 1.0 in
  List.iter (Dispatch.push q) [ e1; e2; tick; e3 ];
  (* The cut happens before the Tick even though max_batch has room. *)
  T_util.checkb "batch 1 stops before the Tick" true
    (List.map snd (Dispatch.next_batch q ~max_batch:64) = [ e1; e2 ]);
  (* A leading Tick is a singleton batch, never grouped. *)
  T_util.checkb "the Tick is a singleton batch" true
    (List.map snd (Dispatch.next_batch q ~max_batch:64) = [ tick ]);
  T_util.checkb "dispatch resumes after the barrier" true
    (List.map snd (Dispatch.next_batch q ~max_batch:64) = [ e3 ]);
  T_util.checkb "drained" true (Dispatch.next_batch q ~max_batch:64 = [])

let test_flow_affinity () =
  (* Packets of one (switch, src, dst) flow always share a shard. *)
  let q = Dispatch.create ~shards:8 in
  List.iter
    (fun (sw, a, b) ->
      T_util.checki "same flow, same shard"
        (Dispatch.shard_of q (pkt_in sw a b))
        (Dispatch.shard_of q (pkt_in sw a b)))
    [ (1, 2, 3); (4, 0, 1); (7, 5, 6) ]

(* ------------------------------------------------------------------ *)
(* The differential property *)

let verdict_of (r : Runner.result) =
  match r.Runner.failure with
  | Some f -> f.Runner.oracle
  | None -> "none"

let explain_divergence spec shards max_batch (a : Runner.result)
    (b : Runner.result) =
  let af = a.Runner.final and bf = b.Runner.final in
  let part name eq = if eq then None else Some name in
  let diffs =
    List.filter_map Fun.id
      [
        part "verdict" (verdict_of a = verdict_of b);
        part "event-trace" (a.Runner.trace = b.Runner.trace);
        part "flow-tables" (af.Runner.tables = bf.Runner.tables);
        part "shadow-intent" (af.Runner.shadows = bf.Runner.shadows);
        part "netlog-journal" (af.Runner.journal = bf.Runner.journal);
        part "metrics"
          ((af.Runner.f_events, af.Runner.f_crashes, af.Runner.f_committed,
            af.Runner.f_aborted)
          = (bf.Runner.f_events, bf.Runner.f_crashes, bf.Runner.f_committed,
             bf.Runner.f_aborted));
      ]
  in
  Printf.sprintf "spec %s, shards=%d batch=%d: %s diverge(s)"
    (Check.Spec.summary spec) shards max_batch (String.concat ", " diffs)

let equivalent (a : Runner.result) (b : Runner.result) =
  verdict_of a = verdict_of b
  && a.Runner.trace = b.Runner.trace
  && a.Runner.final = b.Runner.final

(* Sequential baselines are pure in the seed; cache them so the 200+
   property cases pay one baseline per distinct seed. *)
let baseline_cache : (int, Runner.result) Hashtbl.t = Hashtbl.create 64

let baseline seed =
  match Hashtbl.find_opt baseline_cache seed with
  | Some r -> r
  | None ->
      let r = Runner.run (SGen.scenario seed) in
      Hashtbl.add baseline_cache seed r;
      r

let prop_differential =
  QCheck2.Test.make
    ~name:"sharded/batched dispatch == sequential dispatch" ~count:220
    QCheck2.Gen.(
      triple (int_bound 120) (oneofl [ 1; 2; 3; 8; 16 ])
        (oneofl [ 1; 2; 7; 64 ]))
    (fun (seed, shards, max_batch) ->
      let spec = SGen.scenario seed in
      let a = baseline seed in
      let b =
        Runner.run ~dispatch:(Runtime.Sharded { shards; max_batch }) spec
      in
      if equivalent a b then true
      else
        QCheck2.Test.fail_report
          (explain_divergence spec shards max_batch a b))

(* ------------------------------------------------------------------ *)
(* Runtime-level regressions *)

(* The differential is only meaningful if the scenarios actually
   interleave Ticks with traffic (every Tick cuts a batch); pin that the
   generator gives the property that structure. *)
let test_scenarios_exercise_tick_barriers () =
  let seed = 3 in
  let r =
    Runner.run ~dispatch:(Runtime.Sharded { shards = 8; max_batch = 64 })
      (SGen.scenario seed)
  in
  let ticks, others =
    List.partition (function Event.Tick _ -> true | _ -> false) r.Runner.trace
  in
  T_util.checkb "trace has ticks" true (ticks <> []);
  T_util.checkb "trace has events between ticks" true (others <> [])

(* Direct twin-runtime check, bypassing the Runner: same topology, same
   injected packets, one Tick mid-stream, one after — batched deliveries
   either side of the barrier must leave identical switch state,
   controller intent and transaction journal. *)
let twin dispatch =
  let clock = Netsim.Clock.create () in
  let net =
    Netsim.Net.create clock (Netsim.Topo_gen.linear ~hosts_per_switch:2 3)
  in
  let config = { Runtime.default_config with Runtime.dispatch } in
  let rt =
    Runtime.create ~config net
      [ Controller.App_sig.app (module Apps.Learning_switch) ]
  in
  Runtime.step rt;
  let hosts = Netsim.Topology.hosts (Netsim.Net.topology net) in
  let inject i =
    let n = List.length hosts in
    let src = List.nth hosts (i mod n) in
    let dst = List.nth hosts ((i + 1 + (i mod (n - 1))) mod n) in
    if src <> dst then
      Netsim.Net.inject net src (Packet.tcp ~src_host:src ~dst_host:dst ())
  in
  for i = 0 to 5 do
    inject i
  done;
  Runtime.step rt;
  Netsim.Clock.advance_by clock 0.5;
  Runtime.tick rt;
  for i = 6 to 11 do
    inject i
  done;
  Runtime.step rt;
  Netsim.Clock.advance_by clock 0.5;
  Runtime.tick rt;
  Runtime.step rt;
  let tables =
    Netsim.Topology.switches (Netsim.Net.topology net)
    |> List.sort compare
    |> List.map (fun sid ->
           Netsim.Flow_table.entries (Netsim.Net.switch net sid).Netsim.Sw.table)
  in
  let shadows =
    match Runtime.reliable rt with
    | Some rel -> Legosdn.Reliable.export_shadows rel
    | None -> []
  in
  let journal =
    match Runtime.netlog rt with
    | Some nl -> Legosdn.Netlog.journal nl
    | None -> []
  in
  (tables, shadows, journal, Runtime.events_processed rt)

let test_twin_runtimes_agree_across_tick_barrier () =
  let seq = twin Runtime.Sequential in
  List.iter
    (fun (shards, max_batch) ->
      let sh = twin (Runtime.Sharded { shards; max_batch }) in
      T_util.checkb
        (Printf.sprintf "twin state equal at shards=%d batch=%d" shards
           max_batch)
        true (seq = sh))
    [ (1, 1); (3, 2); (8, 64) ]

let suite =
  [
    Alcotest.test_case "merge restores arrival order" `Quick
      test_merge_restores_arrival_order;
    Alcotest.test_case "tick is a batch barrier" `Quick
      test_tick_is_a_batch_barrier;
    Alcotest.test_case "flow affinity is deterministic" `Quick
      test_flow_affinity;
    QCheck_alcotest.to_alcotest prop_differential;
    Alcotest.test_case "scenarios exercise tick barriers" `Quick
      test_scenarios_exercise_tick_barriers;
    Alcotest.test_case "twin runtimes agree across tick barrier" `Quick
      test_twin_runtimes_agree_across_tick_barrier;
  ]
