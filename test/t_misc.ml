(* Odds and ends: storm shedding on the monolithic baseline, flood probes,
   app variants, switch-outage schedules. *)

open Openflow
open Netsim
module Monolithic = Controller.Monolithic
module Event = Controller.Event
module App_sig = Controller.App_sig

let test_monolithic_sheds_storms_too () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.ring ~hosts_per_switch:1 4) in
  let mono = Monolithic.create net [ (App_sig.app (module Apps.Hub)) ] in
  Monolithic.step mono;
  Net.inject net 1 (T_util.tcp_packet 1 3);
  Monolithic.step mono;
  T_util.checkb "storm guard engaged" true (Monolithic.events_shed mono > 0);
  T_util.checkb "controller survived the storm" true
    (Monolithic.status mono = Monolithic.Running)

let test_flood_probe_reaches_all_hosts () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.star ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  (* Flood rules everywhere: a probe must fan out to every other host. *)
  List.iter
    (fun sid ->
      ignore
        (Net.send net sid
           (Message.message
              (Message.Flow_mod
                 (Message.flow_add Ofp_match.any [ Action.Output Types.port_flood ])))))
    (Topology.switches (Net.topology net));
  let probe = Net.probe net 1 (T_util.tcp_packet 1 2) in
  Alcotest.(check (list int)) "all other hosts reached" [ 2; 3 ]
    probe.Net.reached

let test_learning_switch_idle_variant () =
  let m = Apps.Learning_switch.with_idle_timeout 5 in
  let module V = (val m : App_sig.APP) in
  Alcotest.(check string) "variant named" "learning_switch(idle=5)" V.name;
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  let rt = Legosdn.Runtime.create net [ App_sig.app m ] in
  Legosdn.Runtime.step rt;
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.1;
      Net.inject net src (T_util.tcp_packet src dst);
      Legosdn.Runtime.step rt)
    [ (1, 2); (2, 1); (1, 2) ];
  T_util.checkb "path pinned" true (Net.reachable net 1 2);
  (* The short idle timeout expires the rules quickly. *)
  Clock.advance_by clock 6.;
  Net.tick net;
  ignore (Net.poll net);
  T_util.checkb "rules idled out" false (Net.reachable net 1 2)

let test_router_variants_differ_in_tie_breaking () =
  (* On a multipath topology the two team versions may pick different
     equal-length paths; at minimum they must both work. *)
  let run variant =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.mesh ~hosts_per_switch:1 4) in
    let rt = Legosdn.Runtime.create net [ App_sig.app variant ] in
    Legosdn.Runtime.step rt;
    List.iter
      (fun (src, dst) ->
        Clock.advance_by clock 0.1;
        Net.inject net src (T_util.tcp_packet src dst);
        Legosdn.Runtime.step rt)
      [ (1, 4); (4, 1); (1, 4) ];
    Net.reachable net 1 4
  in
  T_util.checkb "team A routes" true (run (Apps.Router.variant "team_a"));
  T_util.checkb "team C routes" true
    (run (Apps.Router.variant ~prefer_high_ports:true "team_c"))

let test_switch_outage_schedule () =
  let faults = Workload.Failure_schedule.switch_outage 2 ~down_at:3. ~up_at:5. in
  T_util.checki "two timed faults" 2 (List.length faults);
  let report =
    Workload.Scenario.run
      (Workload.Scenario.make ~faults
         ~make_topology:(fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
         ~duration:8.
         ~traffic:
           (Workload.Traffic.schedule
              (Workload.Traffic.all_pairs_once ~hosts:[ 1; 2; 3 ] ~start:0.5
                 ~spacing:0.2))
         ())
      ~make_driver:(fun net ->
        Workload.Scenario.legosdn_driver
          (Legosdn.Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ]))
  in
  Alcotest.(check (float 1e-9)) "controller unaffected by switch outage" 1.0
    report.Workload.Scenario.controller_availability

let test_event_pp_total () =
  (* Every event constructor renders without raising. *)
  let desc = { Message.port_no = 1; hw_addr = 0; name = "e"; up = true; no_flood = false } in
  let events =
    [
      Event.Switch_up (1, { Message.datapath_id = 1; n_buffers = 0; n_tables = 1; ports = [ desc ] });
      Event.Switch_down 1;
      Event.Port_status (1, Message.Port_add, desc);
      Event.Link_up { Event.src_switch = 1; src_port = 1; dst_switch = 2; dst_port = 1 };
      Event.Link_down { Event.src_switch = 1; src_port = 1; dst_switch = 2; dst_port = 1 };
      Event.Packet_in
        (1, { Message.pi_buffer_id = None; pi_in_port = 1; pi_reason = Message.No_match;
              pi_packet = T_util.tcp_packet 1 2 });
      Event.Flow_removed
        (1, { Message.fr_pattern = Ofp_match.any; fr_cookie = 0L; fr_priority = 0;
              fr_reason = Message.Removed_idle; fr_duration = 0; fr_idle_timeout = 0;
              fr_packet_count = 0; fr_byte_count = 0 });
      Event.Stats_reply (1, 0, Message.Description_reply "x");
      Event.Tick 0.;
    ]
  in
  List.iter
    (fun ev ->
      T_util.checkb "renders" true
        (String.length (Format.asprintf "%a" Event.pp ev) > 0))
    events;
  T_util.checki "all kinds covered by the sample" (List.length Event.all_kinds)
    (List.length (List.sort_uniq compare (List.map Event.kind_of events)))

let test_mac_ip_formatting () =
  Alcotest.(check string) "mac" "02:00:00:00:00:2a"
    (Types.mac_to_string (Types.mac_of_host 42));
  Alcotest.(check string) "ip" "10.0.1.4"
    (Types.ip_to_string (Types.ip_of_host 260));
  Alcotest.(check string) "reserved port name" "FLOOD"
    (Format.asprintf "%a" Types.pp_port Types.port_flood)

let suite =
  [
    Alcotest.test_case "monolithic sheds storms" `Quick test_monolithic_sheds_storms_too;
    Alcotest.test_case "flood probe fans out" `Quick test_flood_probe_reaches_all_hosts;
    Alcotest.test_case "learning switch idle variant" `Quick test_learning_switch_idle_variant;
    Alcotest.test_case "router variants both route" `Quick
      test_router_variants_differ_in_tie_breaking;
    Alcotest.test_case "switch outage schedule" `Quick test_switch_outage_schedule;
    Alcotest.test_case "event printers total" `Quick test_event_pp_total;
    Alcotest.test_case "address formatting" `Quick test_mac_ip_formatting;
  ]
