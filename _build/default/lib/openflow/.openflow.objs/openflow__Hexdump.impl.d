lib/openflow/hexdump.ml: Buffer Bytes Char Codec Format Printf
