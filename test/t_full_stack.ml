module App_sig = Controller.App_sig
(* Whole-suite integration on data-center topologies: five applications
   together on a fat-tree, with failures, mirroring examples/full_stack.ml
   as assertions. *)

open Netsim
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox
module Metrics = Legosdn.Metrics
module Event = Controller.Event

let suite_apps ?bug () : Controller.App_sig.app list =
  let router : Controller.App_sig.app =
    match bug with
    | None -> (App_sig.app (module Apps.Router))
    | Some bug -> Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Router))
  in
  [
    (App_sig.app (module Apps.Spanning_tree));
    (App_sig.app (module Apps.Arp_responder));
    router;
    (App_sig.app (module Apps.Firewall));
    (App_sig.app (module Apps.Monitor));
  ]

let active_pairs =
  [ (1, 9); (9, 1); (2, 14); (14, 2); (3, 7); (7, 3); (5, 16); (16, 5) ]

let setup ?bug () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.fat_tree 4) in
  let rt = Runtime.create net (suite_apps ?bug ()) in
  Runtime.step rt;
  (clock, net, rt)

let warm clock net rt =
  for h = 1 to 16 do
    Clock.advance_by clock 0.01;
    Net.inject net h (Openflow.Packet.arp_request ~src_host:h ~dst_host:((h mod 16) + 1));
    Runtime.step rt
  done;
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.05;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      Runtime.step rt)
    active_pairs

let served net =
  List.length (List.filter (fun (s, d) -> Net.reachable net s d) active_pairs)

let test_suite_programs_fat_tree () =
  let clock, net, rt = setup () in
  warm clock net rt;
  T_util.checki "all active flows pinned" (List.length active_pairs) (served net);
  T_util.checki "no storms despite cycles everywhere" 0 (Runtime.events_shed rt);
  (* The fabric stays invariant-clean. *)
  Alcotest.(check (list string)) "no violations" []
    (List.map Invariants.Checker.violation_kind
       (Invariants.Checker.check (Invariants.Snapshot.of_net net)))

let test_suite_survives_chaos () =
  let bug =
    Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 6666) Apps.Bug_model.Crash
  in
  let clock, net, rt = setup ~bug () in
  warm clock net rt;
  (* Poison a not-yet-routed pair so the packet actually reaches the
     controller (routed destinations are matched in hardware), then break
     things. *)
  Net.inject net 4 (Openflow.Packet.tcp ~src_host:4 ~dst_host:10 ~dport:6666 ());
  Runtime.step rt;
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 5));
  Runtime.step rt;
  Net.apply_fault net (Net.Switch_down 6);
  Runtime.step rt;
  Net.apply_fault net (Net.Switch_up 6);
  Runtime.step rt;
  (* Re-drive traffic over the repaired fabric. *)
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.05;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      Runtime.step rt)
    (active_pairs @ active_pairs);
  let m = Runtime.metrics rt in
  T_util.checkb "router crash absorbed" true (Metrics.crashes m >= 1);
  List.iter
    (fun box -> T_util.checkb "every app alive" true (Sandbox.alive box))
    (Runtime.sandboxes rt);
  T_util.checki "all active flows re-served" (List.length active_pairs) (served net)

let test_firewall_holds_on_fat_tree () =
  let clock, net, rt = setup () in
  warm clock net rt;
  let delivered_before = (Net.stats net).Net.delivered in
  Clock.advance_by clock 0.05;
  Net.inject net 1 (Openflow.Packet.tcp ~src_host:1 ~dst_host:9 ~dport:23 ());
  Runtime.step rt;
  T_util.checki "telnet blocked across pods" delivered_before
    (Net.stats net).Net.delivered

let test_jellyfish_suite () =
  (* Same suite on a random-regular topology: flows pin, no storms. *)
  let clock = Clock.create () in
  let net =
    Net.create clock (Topo_gen.jellyfish ~seed:4 ~switches:10 ~degree:4 ())
  in
  let rt = Runtime.create net (suite_apps ()) in
  Runtime.step rt;
  for h = 1 to 10 do
    Clock.advance_by clock 0.01;
    Net.inject net h (Openflow.Packet.arp_request ~src_host:h ~dst_host:((h mod 10) + 1));
    Runtime.step rt
  done;
  let pairs = [ (1, 6); (6, 1); (3, 9); (9, 3) ] in
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.05;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      Runtime.step rt)
    pairs;
  T_util.checki "flows pinned on jellyfish" 4
    (List.length (List.filter (fun (s, d) -> Net.reachable net s d) pairs));
  T_util.checki "no storms" 0 (Runtime.events_shed rt)

let suite =
  [
    Alcotest.test_case "suite programs a fat-tree" `Quick test_suite_programs_fat_tree;
    Alcotest.test_case "suite survives chaos" `Quick test_suite_survives_chaos;
    Alcotest.test_case "firewall holds across pods" `Quick test_firewall_holds_on_fat_tree;
    Alcotest.test_case "suite on jellyfish" `Quick test_jellyfish_suite;
  ]
