open Openflow
module Sandbox = Legosdn.Sandbox
module App_sig = Controller.App_sig
module Event = Controller.Event

let packet_in ?(sid = 1) ?(in_port = 100) src dst =
  Event.Packet_in
    ( sid,
      {
        Message.pi_buffer_id = None;
        pi_in_port = in_port;
        pi_reason = Message.No_match;
        pi_packet = T_util.tcp_packet src dst;
      } )

let ls_sandbox ?(bug = None) ?(every = 1) () =
  let base : App_sig.app = (App_sig.app (module Apps.Learning_switch)) in
  let m = match bug with None -> base | Some b -> Apps.Faulty.wrap ~bug:b base in
  Sandbox.create ~checkpoint_every:every m

let ctx = T_util.null_context

let test_done_verdict_and_commands () =
  let box = ls_sandbox () in
  Sandbox.prepare box;
  match Sandbox.deliver box ctx (packet_in 1 2) with
  | Sandbox.Done commands ->
      T_util.checkb "flood for unknown dst" true (List.length commands = 1);
      T_util.checki "one event handled" 1 (Sandbox.events_handled box)
  | _ -> Alcotest.fail "expected Done"

let test_crash_verdict_contains_detail () =
  let box =
    ls_sandbox ~bug:(Some (Apps.Bug_model.crash_on Event.K_packet_in)) ()
  in
  Sandbox.prepare box;
  (match Sandbox.deliver box ctx (packet_in 1 2) with
  | Sandbox.Crashed { detail; partial } ->
      T_util.checkb "detail mentions injection" true
        (String.length detail > 0);
      T_util.checkb "no partial commands" true (partial = [])
  | _ -> Alcotest.fail "expected Crashed");
  T_util.checki "crash counted" 1 (Sandbox.crash_count box);
  T_util.checkb "still alive (policy decides death)" true (Sandbox.alive box)

let test_partial_crash_carries_commands () =
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.On_kind Event.K_packet_in)
      (Apps.Bug_model.Crash_partial 1.0)
  in
  let box =
    Sandbox.create ~checkpoint_every:1 (Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Flooder)))
  in
  Sandbox.prepare box;
  match Sandbox.deliver box ctx (packet_in 1 2) with
  | Sandbox.Crashed { partial; _ } ->
      T_util.checki "both commands escaped" 2 (List.length partial)
  | _ -> Alcotest.fail "expected Crashed with partial"

let test_hang_verdict () =
  let bug =
    Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
      Apps.Bug_model.Hang
  in
  let box = ls_sandbox ~bug:(Some bug) () in
  Sandbox.prepare box;
  T_util.checkb "hung verdict" true (Sandbox.deliver box ctx (packet_in 1 2) = Sandbox.Hung)

let test_crash_leaves_state_untouched () =
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 2 in
  let box = ls_sandbox ~bug:(Some bug) () in
  Sandbox.prepare box;
  ignore (Sandbox.deliver box ctx (packet_in 1 2));
  Sandbox.confirm box (packet_in 1 2);
  let snapshot_before = Sandbox.state_size box in
  Sandbox.prepare box;
  (match Sandbox.deliver box ctx (packet_in 2 1) with
  | Sandbox.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash on 2nd packet_in");
  T_util.checki "state unchanged by crash" snapshot_before (Sandbox.state_size box)

let test_recover_restores_and_replays () =
  let box = ls_sandbox ~every:5 () in
  Sandbox.prepare box;
  (* Three successful events journaled against one snapshot. *)
  List.iter
    (fun ev ->
      (match Sandbox.deliver box ctx ev with
      | Sandbox.Done _ -> ()
      | _ -> Alcotest.fail "healthy app");
      Sandbox.confirm box ev)
    [ packet_in 1 2; packet_in 2 1; packet_in 3 1 ];
  let size_before = Sandbox.state_size box in
  let recovery = Sandbox.recover box ctx in
  T_util.checki "replayed the journal" 3 recovery.Sandbox.replayed;
  T_util.checki "nothing dropped" 0 recovery.Sandbox.dropped_in_replay;
  T_util.checki "state reconstructed exactly" size_before (Sandbox.state_size box)

let test_recover_without_checkpoint_reboots () =
  let box = ls_sandbox () in
  (* No prepare/checkpoint ever taken. *)
  let recovery = Sandbox.recover box ctx in
  T_util.checki "nothing to replay" 0 recovery.Sandbox.replayed

let test_revert_last () =
  let box = ls_sandbox () in
  Sandbox.prepare box;
  let before = Sandbox.state_size box in
  (match Sandbox.deliver box ctx (packet_in 1 2) with
  | Sandbox.Done _ -> ()
  | _ -> Alcotest.fail "healthy app");
  Sandbox.revert_last box;
  T_util.checki "state reverted" before (Sandbox.state_size box)

let test_rpc_bytes_grow () =
  let box = ls_sandbox () in
  Sandbox.prepare box;
  ignore (Sandbox.deliver box ctx (packet_in 1 2));
  let after_one = Sandbox.rpc_bytes box in
  T_util.checkb "serialization accounted" true (after_one > 0);
  ignore (Sandbox.deliver box ctx (packet_in 2 1));
  T_util.checkb "grows monotonically" true (Sandbox.rpc_bytes box > after_one)

let test_disable_enable () =
  let box = ls_sandbox () in
  Sandbox.disable box;
  T_util.checkb "disabled" false (Sandbox.alive box);
  Sandbox.enable box;
  T_util.checkb "re-enabled" true (Sandbox.alive box)

let test_replay_drops_recrashing_events () =
  (* k=5; event 2 is poisoned only *after* state rollback re-arms the bug —
     here we simulate by a bug on every 2nd packet_in: during replay the
     same event crashes again and is dropped. *)
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 2 in
  let box = ls_sandbox ~bug:(Some bug) ~every:5 () in
  Sandbox.prepare box;
  (match Sandbox.deliver box ctx (packet_in 1 2) with
  | Sandbox.Done _ -> Sandbox.confirm box (packet_in 1 2)
  | _ -> Alcotest.fail "first event fine");
  (* Second crashes. Recover: replay journal = [event1] which is fine. *)
  (match Sandbox.deliver box ctx (packet_in 2 1) with
  | Sandbox.Crashed _ -> ()
  | _ -> Alcotest.fail "second should crash");
  let recovery = Sandbox.recover box ctx in
  T_util.checki "journal replayed" 1 recovery.Sandbox.replayed;
  T_util.checki "no drops" 0 recovery.Sandbox.dropped_in_replay

let suite =
  [
    Alcotest.test_case "done verdict" `Quick test_done_verdict_and_commands;
    Alcotest.test_case "crash verdict" `Quick test_crash_verdict_contains_detail;
    Alcotest.test_case "partial crash commands" `Quick test_partial_crash_carries_commands;
    Alcotest.test_case "hang verdict" `Quick test_hang_verdict;
    Alcotest.test_case "crash leaves state" `Quick test_crash_leaves_state_untouched;
    Alcotest.test_case "recover restores and replays" `Quick test_recover_restores_and_replays;
    Alcotest.test_case "recover without checkpoint" `Quick test_recover_without_checkpoint_reboots;
    Alcotest.test_case "revert last delivery" `Quick test_revert_last;
    Alcotest.test_case "rpc bytes accounting" `Quick test_rpc_bytes_grow;
    Alcotest.test_case "disable/enable" `Quick test_disable_enable;
    Alcotest.test_case "replay survives re-crashes" `Quick test_replay_drops_recrashing_events;
  ]
