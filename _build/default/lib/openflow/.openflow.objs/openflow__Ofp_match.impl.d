lib/openflow/ofp_match.ml: Buf Format Option Packet Stdlib Types
