test/t_switch.ml: Action Alcotest Bytes Flow_entry Flow_table List Message Netsim Ofp_match Openflow Option Packet Sw T_util Types
