open Openflow
module Net = Netsim.Net
module Clock = Netsim.Clock

type crash_info = {
  culprit : string;
  event : Event.t option;
  detail : string;
  at : float;
}

type status = Running | Crashed of crash_info

type t = {
  network : Net.t;
  modules : App_sig.app list;
  mutable services_state : Services.t;
  mutable instances : App_sig.instance list;
  mutable state : status;
  mutable next_xid : int;
  mutable backlog : Event.t list;  (* events produced mid-dispatch *)
  mutable n_events : int;
  mutable n_commands : int;
  mutable n_shed : int;
}

let fresh_services network =
  Services.create (Net.clock network) (Net.topology network)

let create network modules =
  {
    network;
    modules;
    services_state = fresh_services network;
    instances = List.map App_sig.instantiate modules;
    state = Running;
    next_xid = 1;
    backlog = [];
    n_events = 0;
    n_commands = 0;
    n_shed = 0;
  }

let status t = t.state
let apps t = t.instances
let services t = t.services_state
let net t = t.network

let events_processed t = t.n_events
let commands_executed t = t.n_commands
let events_shed t = t.n_shed

let now t = Clock.now (Net.clock t.network)

let crash t ~culprit ~event ~detail =
  t.state <- Crashed { culprit; event = Some event; detail; at = now t }

(* Execute one command against the network. Synchronous replies that carry
   application-visible information (stats) are queued as future events. *)
let execute_command t cmd =
  t.n_commands <- t.n_commands + 1;
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  match Command.to_message ~xid cmd with
  | None -> ()
  | Some (sid, msg) ->
      let replies = Net.send t.network sid msg in
      List.iter
        (fun (reply : Message.t) ->
          match reply.payload with
          | Message.Stats_reply sr ->
              t.backlog <- t.backlog @ [ Event.Stats_reply (sid, reply.xid, sr) ]
          | Message.Flow_removed fr ->
              t.backlog <- t.backlog @ [ Event.Flow_removed (sid, fr) ]
          | _ -> ())
        replies

let dispatch_to t inst event =
  let ctx = Services.context t.services_state in
  match App_sig.handle inst ctx event with
  | updated, commands ->
      List.iter (execute_command t) commands;
      Some updated
  | exception App_sig.Crash_with_partial partial ->
      (* The partial prefix already reached the controller; in a monolithic
         stack those rules hit the network before the crash takes
         everything down. *)
      List.iter (execute_command t) partial;
      crash t ~culprit:(App_sig.name inst) ~event
        ~detail:"crash after partial command emission";
      None
  | exception App_sig.App_hang ->
      crash t ~culprit:(App_sig.name inst) ~event ~detail:"hang";
      None
  | exception exn ->
      crash t ~culprit:(App_sig.name inst) ~event
        ~detail:(Printexc.to_string exn);
      None

let dispatch_event t event =
  if t.state = Running then begin
    t.n_events <- t.n_events + 1;
    let rec deliver = function
      | [] -> []
      | inst :: rest ->
          if t.state <> Running then inst :: rest
          else if App_sig.subscribes_to inst (Event.kind_of event) then
            match dispatch_to t inst event with
            | Some updated -> updated :: deliver rest
            | None -> inst :: rest (* controller just died; freeze the rest *)
          else inst :: deliver rest
    in
    t.instances <- deliver t.instances
  end

let rec drain_backlog t =
  match t.backlog with
  | [] -> ()
  | event :: rest ->
      t.backlog <- rest;
      dispatch_event t event;
      if t.state = Running then drain_backlog t

(* Drain-until-quiet: dispatching events triggers commands whose data-plane
   effects raise further notifications (a released packet missing at the
   next switch); keep draining until the network goes quiet. The event
   budget is a broadcast-storm guard: on a cyclic topology a flooding app
   (or a crashing app whose un-rollbackable packet-outs keep escaping) can
   multiply packet-ins exponentially; real switches shed packet-ins when
   the controller falls behind, and so do we — the excess notifications
   are dropped and counted. *)
let storm_guard_events = 2048

let step t =
  let budget = ref storm_guard_events in
  let rec go () =
    if t.state = Running then
      match Net.poll t.network with
      | [] -> ()
      | notifications ->
          let events =
            List.concat_map (Services.ingest t.services_state) notifications
          in
          List.iter
            (fun ev ->
              if t.state = Running then
                if !budget > 0 then begin
                  decr budget;
                  dispatch_event t ev
                end
                else t.n_shed <- t.n_shed + 1)
            events;
          drain_backlog t;
          if !budget > 0 then go ()
          else
            (* Shed whatever the last dispatches still generated. *)
            t.n_shed <- t.n_shed + List.length (Net.poll t.network)
  in
  go ()

let tick t = dispatch_event t (Event.Tick (now t))

let restart t =
  t.state <- Running;
  t.backlog <- [];
  t.instances <- List.map App_sig.instantiate t.modules;
  t.services_state <- fresh_services t.network;
  (* Re-handshake: alive switches present themselves again. *)
  let topo = Net.topology t.network in
  List.iter
    (fun sid ->
      let sw = Net.switch t.network sid in
      if sw.Netsim.Sw.up then begin
        let events =
          Services.ingest t.services_state
            (Net.Switch_connected (sid, Netsim.Sw.features sw))
        in
        List.iter (dispatch_event t) events
      end)
    (Netsim.Topology.switches topo);
  drain_backlog t
