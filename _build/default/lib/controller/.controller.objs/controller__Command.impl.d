lib/controller/command.ml: Format Message Openflow Types
