open Openflow

type injection = {
  at : float;
  src : Netsim.Topology.host;
  packet : Packet.t;
}

type flow_spec = {
  src_host : Netsim.Topology.host;
  dst_host : Netsim.Topology.host;
  start : float;
  packets : int;
  interval : float;
  dport : int;
}

let flow_injections spec =
  List.init spec.packets (fun i ->
      {
        at = spec.start +. (float i *. spec.interval);
        src = spec.src_host;
        (* The canonical source port: installed exact-match rules then also
           cover the reachability probes used by the connectivity metric. *)
        packet =
          Packet.tcp ~src_host:spec.src_host ~dst_host:spec.dst_host
            ~dport:spec.dport ();
      })

let uniform_pairs ~seed ~hosts ~flows ~duration ?(packets_per_flow = 3)
    ?(dport = 80) () =
  let rng = Random.State.make [| seed |] in
  let host_array = Array.of_list hosts in
  let n = Array.length host_array in
  if n < 2 then []
  else
    List.init flows (fun _ ->
        let src = host_array.(Random.State.int rng n) in
        let dst = ref host_array.(Random.State.int rng n) in
        while !dst = src do
          dst := host_array.(Random.State.int rng n)
        done;
        {
          src_host = src;
          dst_host = !dst;
          start = Random.State.float rng duration;
          packets = packets_per_flow;
          interval = 0.01;
          dport;
        })

let all_pairs_once ~hosts ~start ~spacing =
  let pairs =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if src <> dst then Some (src, dst) else None)
          hosts)
      hosts
  in
  List.mapi
    (fun i (src, dst) ->
      {
        src_host = src;
        dst_host = dst;
        start = start +. (float i *. spacing);
        packets = 1;
        interval = spacing;
        dport = 80;
      })
    pairs

let schedule specs =
  List.concat_map flow_injections specs
  |> List.stable_sort (fun a b -> compare a.at b.at)
