lib/core/standby.mli: Controller Netsim Runtime
