module App_sig = Controller.App_sig
open Netsim
module Standby = Legosdn.Standby
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox

let drive net step pairs =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.2;
      Net.inject net src (T_util.tcp_packet src dst);
      step ())
    pairs

let fresh () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let sb = Standby.create ~sync_interval:0.5 net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Standby.step sb;
  (net, sb)

let ls sb = Option.get (Runtime.sandbox (Standby.runtime sb) "learning_switch")

let test_sync_happens_on_interval () =
  let net, sb = fresh () in
  T_util.checkb "initial sync recorded" true (Standby.last_sync_at sb <> None);
  drive net (fun () -> Standby.step sb) [ (1, 2); (2, 1); (1, 2) ];
  match Standby.last_sync_at sb with
  | Some at -> T_util.checkb "resynced after the interval" true (at >= 0.5)
  | None -> Alcotest.fail "sync timestamp expected"

let test_failover_preserves_synced_state () =
  let net, sb = fresh () in
  drive net (fun () -> Standby.step sb) [ (1, 2); (2, 1); (1, 3); (3, 1) ];
  Standby.sync sb;
  let state_before = Sandbox.snapshot_bytes (ls sb) in
  let old_runtime = Standby.runtime sb in
  let sb = Standby.fail_primary sb in
  T_util.checkb "a fresh runtime took over" true (Standby.runtime sb != old_runtime);
  T_util.checki "one failover" 1 (Standby.failovers sb);
  T_util.checkb "app state restored from shipment" true
    (Sandbox.snapshot_bytes (ls sb) = state_before);
  (* The new controller serves traffic. *)
  drive net (fun () -> Standby.step sb) [ (2, 3) ];
  T_util.checkb "post-failover events flow" true
    (Sandbox.events_handled (ls sb) > 0)

let test_failover_loses_only_unsynced_events () =
  let net, sb = fresh () in
  drive net (fun () -> Standby.step sb) [ (1, 2) ];
  Standby.sync sb;
  let synced = Sandbox.snapshot_bytes (ls sb) in
  (* More learning after the last sync, staying inside the current sync
     window (the deadline grid is anchored to the virtual clock, so the
     next automatic ship happens at the next multiple of the interval):
     this part is lost on failover. *)
  drive net (fun () -> Standby.step sb) [ (2, 1) ];
  T_util.checkb "state moved past the sync point" true
    (Sandbox.snapshot_bytes (ls sb) <> synced);
  let sb = Standby.fail_primary sb in
  T_util.checkb "rolled back exactly to the sync point" true
    (Sandbox.snapshot_bytes (ls sb) = synced)

let test_failover_without_any_sync_reinits () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  (* Huge interval: the create-time state was never shipped. *)
  let sb = Standby.create ~sync_interval:1e9 net [ (App_sig.app (module Apps.Learning_switch)) ] in
  (* Note: first step syncs once (nothing learned yet), which is the
     freshest shipment the standby will ever get. *)
  Standby.step sb;
  drive net (fun () -> Standby.step sb) [ (1, 2); (2, 1) ];
  let sb = Standby.fail_primary sb in
  let fresh_snapshot =
    Sandbox.snapshot_bytes
      (Legosdn.Sandbox.create ~checkpoint_every:1 (App_sig.app (module Apps.Learning_switch)))
  in
  T_util.checkb "fell back to init state" true
    (Sandbox.snapshot_bytes (ls sb) = fresh_snapshot)

let suite =
  [
    Alcotest.test_case "periodic sync" `Quick test_sync_happens_on_interval;
    Alcotest.test_case "failover preserves synced state" `Quick
      test_failover_preserves_synced_state;
    Alcotest.test_case "only unsynced events lost" `Quick
      test_failover_loses_only_unsynced_events;
    Alcotest.test_case "failover without sync re-inits" `Quick
      test_failover_without_any_sync_reinits;
  ]
