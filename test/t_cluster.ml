module App_sig = Controller.App_sig
(* The replicated controller cluster: election convergence, commit-gated
   dispatch, transaction-preserving fail-over, and the core replication
   theorem — replaying a node's committed log through fresh sandboxes
   reproduces the leader's live state — checked across randomized peer
   fault schedules and election timings. *)

open Netsim
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox
module Raft = Cluster.Raft
module Services = Controller.Services
module Event = Controller.Event

let config ?(replicas = 3) ?(lo = 0.15) ?(hi = 0.3) () =
  {
    Runtime.default_config with
    Runtime.cluster = { Runtime.replicas; election_lo = lo; election_hi = hi };
  }

let apps : Controller.App_sig.app list = [ (App_sig.app (module Apps.Learning_switch)) ]

let fresh ?peer_channel ?(seed = 7) ?(replicas = 3) () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let c =
    Cluster.create ~config:(config ~replicas ()) ?peer_channel ~seed net apps
  in
  (clock, net, c)

(* Advance virtual time in driver-cadence steps, injecting one packet per
   step, exactly as the checker's runner drives a cluster. *)
let drive clock net c pairs =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.5;
      Net.tick net;
      Net.inject net src (T_util.tcp_packet src dst);
      Cluster.tick c)
    pairs

(* Quiesce like the checker's settle phase: a few driver ticks, then one
   bare step. A tick appends a fresh Tick entry, so followers trail the
   leader's commit by one heartbeat round; the final step appends nothing
   and its heartbeats propagate the last commit index. *)
let settle clock net c n =
  for _ = 1 to n do
    Clock.advance_by clock 0.5;
    Net.tick net;
    Cluster.tick c
  done;
  Clock.advance_by clock 0.5;
  Net.tick net;
  Cluster.step c

let test_election_converges () =
  let clock, net, c = fresh () in
  settle clock net c 4;
  T_util.checki "exactly one live leader" 1 (List.length (Cluster.alive_leaders c));
  T_util.checkb "at least one election ran" true (Cluster.elections c >= 1);
  T_util.checkb "terms and commits agree" true (Cluster.converged c)

let test_commit_gated_dispatch () =
  let clock, net, c = fresh () in
  drive clock net c [ (1, 2); (2, 1); (1, 3); (3, 1) ];
  settle clock net c 2;
  let commit = Cluster.commit_index c in
  T_util.checkb "traffic became committed entries" true (commit > 0);
  let leader = Option.get (Cluster.leader c) in
  T_util.checki "leader dispatched exactly the committed prefix" commit
    (Cluster.node_last_dispatched c leader);
  Array.iter
    (fun i -> T_util.checki "replica commit agrees" commit (Cluster.node_commit c i))
    (Array.init (Cluster.nodes c) (fun i -> i));
  T_util.checkb "replication moved messages" true (Cluster.replication_msgs c > 0);
  T_util.checkb "replication accounted bytes" true (Cluster.replication_bytes c > 0)

let test_kill_leader_fails_over () =
  let clock, net, c = fresh () in
  drive clock net c [ (1, 2); (2, 1) ];
  let old_leader = Option.get (Cluster.leader c) in
  Cluster.arm_kill c;
  drive clock net c [ (1, 3); (3, 1); (2, 3) ];
  settle clock net c 3;
  T_util.checki "the armed kill fired" 1 (Cluster.kills c);
  T_util.checki "a successor took over" 1 (Cluster.failovers c);
  T_util.checkb "the old leader is dead" true (not (Cluster.node_alive c old_leader));
  (match Cluster.leader c with
  | Some l -> T_util.checkb "a different node leads" true (l <> old_leader)
  | None -> Alcotest.fail "no live leader after fail-over");
  (match Cluster.failover_latencies c with
  | [ d ] -> T_util.checkb "fail-over latency recorded" true (d >= 0.)
  | l -> Alcotest.failf "one latency sample expected, got %d" (List.length l));
  (* The successor serves traffic: the committed log keeps growing. *)
  let before = Cluster.commit_index c in
  drive clock net c [ (3, 2) ];
  T_util.checkb "post-failover events commit" true (Cluster.commit_index c > before)

let test_followers_keep_sandboxes_warm () =
  let clock, net, c = fresh () in
  (* Enough traffic to cross the state-transfer cadence. *)
  drive clock net c
    [ (1, 2); (2, 1); (1, 3); (3, 1); (2, 3); (3, 2); (1, 2); (2, 1) ];
  settle clock net c 2;
  T_util.checkb "state transfers shipped" true (Cluster.transfers_shipped c > 0);
  T_util.checkb "transfer bytes accounted" true (Cluster.transfer_bytes c > 0)

(* Replay a committed log prefix through fresh sandboxes, mirroring the
   dispatch path: a context replica observes each entry first, then every
   subscribed app handles it. Returns each app's state bytes. *)
let replay_log net entries =
  let services = Services.create (Net.clock net) (Net.topology net) in
  let boxes =
    List.map (fun m -> Sandbox.create ~checkpoint_every:1000 m) apps
  in
  List.iter Sandbox.prepare boxes;
  List.iter
    (fun (e : Raft.entry) ->
      Services.observe services e.Raft.event;
      List.iter
        (fun box ->
          if Sandbox.subscribes_to box (Event.kind_of e.Raft.event) then
            ignore (Sandbox.deliver box (Services.context services) e.Raft.event))
        boxes)
    entries;
  List.map (fun b -> (Sandbox.name b, Sandbox.snapshot_bytes b)) boxes

let take n l = List.filteri (fun i _ -> i < n) l

(* The replication theorem behind fail-over transparency, under random
   peer-channel faults, election timings, and an optional mid-run kill:
   (a) every replica's committed prefix is a prefix of the leader's log,
   and (b) replaying the leader's committed log from scratch reproduces
   the leader's live sandbox state — so any quorum member can continue. *)
let prop_replay_equals_leader_state =
  let gen =
    QCheck2.Gen.(
      let* seed = int_bound 10_000 in
      let* loss = oneofl [ 0.; 0.; 0.1; 0.3 ] in
      let* duplicate = oneofl [ 0.; 0.2 ] in
      let* delay =
        oneofl [ Channel.No_delay; Channel.Fixed 0.05; Channel.Uniform (0., 0.2) ]
      in
      let* lo = oneofl [ 0.05; 0.15; 0.25 ] in
      let* hi_extra = oneofl [ 0.1; 0.2 ] in
      let* kill_after = oneofl [ None; Some 2; Some 5 ] in
      let* pairs =
        list_size (int_range 3 12)
          (pair (int_range 1 3) (int_range 1 3))
      in
      return (seed, loss, duplicate, delay, lo, lo +. hi_extra, kill_after, pairs))
  in
  QCheck2.Test.make ~name:"committed-log replay reproduces leader state"
    ~count:60 gen
    (fun (seed, loss, duplicate, delay, lo, hi, kill_after, pairs) ->
      let clock = Clock.create () in
      let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
      let peer_channel =
        { Channel.perfect with Channel.loss; duplicate; delay }
      in
      let c =
        Cluster.create
          ~config:(config ~lo ~hi ())
          ~peer_channel ~seed net apps
      in
      List.iteri
        (fun i (src, dst) ->
          (match kill_after with
          | Some k when i = k -> Cluster.arm_kill c
          | _ -> ());
          Clock.advance_by clock 0.5;
          Net.tick net;
          Net.inject net src (T_util.tcp_packet src dst);
          Cluster.tick c)
        pairs;
      for _ = 1 to 4 do
        Clock.advance_by clock 0.5;
        Net.tick net;
        Cluster.tick c
      done;
      match Cluster.leader c with
      | None -> true (* lossy enough that no quorum formed: nothing to check *)
      | Some leader ->
          let leader_log = Cluster.node_log c leader in
          let commit = Cluster.node_commit c leader in
          (* (a) committed prefixes never diverge. *)
          for i = 0 to Cluster.nodes c - 1 do
            if Cluster.node_alive c i then begin
              let k = min (Cluster.node_commit c i) commit in
              if take k (Cluster.node_log c i) <> take k leader_log then
                QCheck2.Test.fail_reportf
                  "node %d committed prefix (%d entries) diverges from leader %d"
                  i k leader
            end
          done;
          (* (b) state is a pure function of the committed log. *)
          let replayed = replay_log net (take commit leader_log) in
          let rt =
            match Cluster.leader_runtime c with
            | Some rt -> rt
            | None -> QCheck2.Test.fail_reportf "leader %d has no runtime" leader
          in
          List.for_all
            (fun (name, bytes) ->
              match Runtime.sandbox rt name with
              | Some box -> Sandbox.snapshot_bytes box = bytes
              | None -> false)
            replayed)

let suite =
  [
    Alcotest.test_case "one leader after settling" `Quick test_election_converges;
    Alcotest.test_case "dispatch is commit-gated" `Quick test_commit_gated_dispatch;
    Alcotest.test_case "leader kill fails over" `Quick test_kill_leader_fails_over;
    Alcotest.test_case "state transfers keep followers warm" `Quick
      test_followers_keep_sandboxes_warm;
    QCheck_alcotest.to_alcotest prop_replay_equals_leader_state;
  ]
