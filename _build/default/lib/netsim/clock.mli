(** Virtual simulation time.

    All time in the simulator is virtual and deterministic; nothing ever
    reads the wall clock. Time is a [float] in seconds. *)

type t

val create : ?start:float -> unit -> t
val now : t -> float

val advance_to : t -> float -> unit
(** Move time forward. Raises [Invalid_argument] on attempts to move it
    backwards — simulation time is monotonic. *)

val advance_by : t -> float -> unit
(** [advance_by c d] moves time forward by [d] seconds ([d >= 0]). *)
