open Controller

module Make (A : App_sig.APP) = struct
  type state = {
    primary : A.state;
    clone : A.state;
    n_switchovers : int;
    n_resyncs : int;
  }

  let name = A.name ^ "+clone"
  let subscriptions = A.subscriptions

  let init () =
    { primary = A.init (); clone = A.init (); n_switchovers = 0; n_resyncs = 0 }

  let switchovers st = st.n_switchovers
  let clone_resyncs st = st.n_resyncs

  let handle ctx st ev =
    match A.handle ctx st.primary ev with
    | primary', commands ->
        (* Primary healthy: feed the clone too, but only the primary's
           output is used. A clone crash is silently absorbed by re-seeding
           it from the primary. *)
        let clone', resyncs =
          match A.handle ctx st.clone ev with
          | clone', _ignored_commands -> (clone', st.n_resyncs)
          | exception _ -> (primary', st.n_resyncs + 1)
        in
        ( { st with primary = primary'; clone = clone'; n_resyncs = resyncs },
          commands )
    | exception _primary_failure -> (
        (* Switch over: the clone becomes primary and handles the event. If
           it fails too, the bug is not non-deterministic after all — let
           Crash-Pad have it. *)
        match A.handle ctx st.clone ev with
        | clone', commands ->
            ( {
                primary = clone';
                clone = clone';
                n_switchovers = st.n_switchovers + 1;
                n_resyncs = st.n_resyncs + 1;
              },
              commands @ [ Command.Log (name ^ ": switched over to clone") ] ))
end
