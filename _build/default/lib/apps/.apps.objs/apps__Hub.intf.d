lib/apps/hub.mli: Controller
