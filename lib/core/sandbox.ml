open Controller

type verdict =
  | Done of Command.t list
  | Crashed of { partial : Command.t list; detail : string }
  | Hung

type t = {
  mutable inst : App_sig.instance;
  mutable prev_inst : App_sig.instance option;  (* state before last deliver *)
  ckpt : Checkpoint.t;
  mutable is_alive : bool;
  mutable n_events : int;
  mutable n_crashes : int;
  mutable n_rpc_bytes : int;
  mutable scratch : Wire.scratch option;
  mutable intent_tables : Policy.table list;
      (* Compiled form of the app's declared policy as last installed on the
         network. Tracks network state, not app state: reboots and restores
         leave it alone because the rules stay in the switches. *)
}

let create ?ckpt ~checkpoint_every m =
  {
    inst = App_sig.instantiate m;
    prev_inst = None;
    ckpt =
      (match ckpt with
      | Some c -> c
      | None -> Checkpoint.create ~every:checkpoint_every);
    is_alive = true;
    n_events = 0;
    n_crashes = 0;
    n_rpc_bytes = 0;
    scratch = None;
    intent_tables = [];
  }

(* Install (or remove) a reusable codec buffer for the RPC boundary. The
   sharded engine installs one per sandbox; the sequential engine keeps
   the fresh-allocation path, staying the executable specification the
   scratch path is tested against. *)
let set_scratch t s = t.scratch <- s

let name t = App_sig.name t.inst
let subscribes_to t kind = App_sig.subscribes_to t.inst kind

let alive t = t.is_alive
let disable t = t.is_alive <- false
let enable t = t.is_alive <- true

let events_handled t = t.n_events
let crash_count t = t.n_crashes
let rpc_bytes t = t.n_rpc_bytes
let state_size t = App_sig.state_size t.inst
let checkpoint_store t = t.ckpt

let prepare ?(tracer = Obs.Tracer.noop) t =
  if Checkpoint.due t.ckpt then
    if Obs.Tracer.enabled tracer then begin
      let id =
        Obs.Tracer.start tracer
          ~attrs:[ ("app", name t) ]
          Obs.Span.Ckpt_take
      in
      Checkpoint.take t.ckpt t.inst;
      Obs.Tracer.finish tracer
        ~attrs:
          [
            ("written", string_of_int (Checkpoint.last_write_bytes t.ckpt));
            ("delta", string_of_bool (Checkpoint.is_delta t.ckpt));
          ]
        id
    end
    else Checkpoint.take t.ckpt t.inst

(* One hop of the proxy->stub RPC: bytes out, bytes back in. *)
let ship_event t ev =
  match t.scratch with
  | Some s ->
      let ev', n = Wire.roundtrip_event_scratch s ev in
      t.n_rpc_bytes <- t.n_rpc_bytes + n;
      ev'
  | None ->
      let b = Wire.encode_event ev in
      t.n_rpc_bytes <- t.n_rpc_bytes + Bytes.length b;
      Wire.decode_event b

let ship_commands t cmds =
  match t.scratch with
  | Some s ->
      let cmds', n = Wire.roundtrip_commands_scratch s cmds in
      t.n_rpc_bytes <- t.n_rpc_bytes + n;
      cmds'
  | None ->
      let b = Wire.encode_commands cmds in
      t.n_rpc_bytes <- t.n_rpc_bytes + Bytes.length b;
      Wire.decode_commands b

let deliver t ctx ev =
  let ev = ship_event t ev in
  match App_sig.handle t.inst ctx ev with
  | updated, commands ->
      t.prev_inst <- Some t.inst;
      t.inst <- updated;
      t.n_events <- t.n_events + 1;
      Done (ship_commands t commands)
  | exception App_sig.Crash_with_partial partial ->
      t.n_crashes <- t.n_crashes + 1;
      Crashed
        {
          partial = ship_commands t partial;
          detail = "crash after partial command emission";
        }
  | exception App_sig.App_hang ->
      t.n_crashes <- t.n_crashes + 1;
      Hung
  | exception exn ->
      t.n_crashes <- t.n_crashes + 1;
      Crashed { partial = []; detail = Printexc.to_string exn }

let confirm t ev = Checkpoint.record_applied t.ckpt ev

let revert_last t =
  match t.prev_inst with
  | Some prev ->
      t.inst <- prev;
      t.prev_inst <- None
  | None -> ()

let checkpoint_now t = Checkpoint.take t.ckpt t.inst

type recovery = { replayed : int; dropped_in_replay : int }

let recover ?(tracer = Obs.Tracer.noop) t ctx =
  let restore () =
    match Checkpoint.restore_point t.ckpt with
    | None ->
        t.inst <- App_sig.reboot t.inst;
        { replayed = 0; dropped_in_replay = 0 }
    | Some (snapshot, journal) ->
        t.inst <- App_sig.restore t.inst snapshot;
        let replayed = ref 0 and dropped = ref 0 in
        List.iter
          (fun ev ->
            (* Replay rebuilds state only; commands were already committed the
               first time around, so they are discarded here. A replay crash
               means the journal event is skipped (state diverges slightly,
               availability is preserved). *)
            match App_sig.handle t.inst ctx ev with
            | updated, _commands ->
                t.inst <- updated;
                incr replayed
            | exception _ -> incr dropped)
          journal;
        (* The restored state becomes the new baseline. *)
        Checkpoint.take t.ckpt t.inst;
        { replayed = !replayed; dropped_in_replay = !dropped }
  in
  if Obs.Tracer.enabled tracer then begin
    let id =
      Obs.Tracer.start tracer
        ~attrs:
          [
            ("app", name t);
            ("journal", string_of_int (Checkpoint.journal_length t.ckpt));
          ]
        Obs.Span.Ckpt_restore
    in
    let r = restore () in
    Obs.Tracer.finish tracer
      ~attrs:
        [
          ("replayed", string_of_int r.replayed);
          ("dropped", string_of_int r.dropped_in_replay);
        ]
      id;
    r
  end
  else restore ()

let reboot t = t.inst <- App_sig.reboot t.inst

let app_module t = App_sig.module_of t.inst

(* The declared policy is evaluated against the *current* instance state;
   a raising hook only disables intent-based recovery, never the app. *)
let declared_policy t ctx =
  match App_sig.policy_of t.inst ctx with
  | p -> p
  | exception _ -> None

let intent_tables t = t.intent_tables
let set_intent_tables t tables = t.intent_tables <- tables

let snapshot_bytes t = App_sig.snapshot t.inst

let restore_bytes t snapshot =
  t.inst <- App_sig.restore t.inst snapshot;
  Checkpoint.take t.ckpt t.inst
