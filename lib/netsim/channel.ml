type delay =
  | No_delay
  | Fixed of float
  | Uniform of float * float

type config = {
  loss : float;
  reply_loss : float;
  duplicate : float;
  delay : delay;
}

let perfect = { loss = 0.; reply_loss = 0.; duplicate = 0.; delay = No_delay }
let lossy p = { perfect with loss = p; reply_loss = p }

type stats = {
  mutable sent : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable replies_sent : int;
  mutable replies_lost : int;
}

type t = {
  mutable cfg : config;
  mutable partition : bool;
  rng : Random.State.t;
  st : stats;
}

let create ?(config = perfect) ~seed () =
  {
    cfg = config;
    partition = false;
    rng = Random.State.make [| 0x5d; seed |];
    st =
      {
        sent = 0;
        lost = 0;
        duplicated = 0;
        delayed = 0;
        replies_sent = 0;
        replies_lost = 0;
      };
  }

let config t = t.cfg
let set_config t cfg = t.cfg <- cfg
let set_loss t p = t.cfg <- { t.cfg with loss = p; reply_loss = p }
let partitioned t = t.partition
let set_partitioned t p = t.partition <- p
let stats t = t.st

(* A probability of exactly 0 must not consume a random draw: the common
   perfect-channel case then behaves like the seed did, and enabling loss
   on one channel cannot perturb another channel's sequence. *)
let happens t p = p > 0. && Random.State.float t.rng 1.0 < p

let draw_delay t =
  match t.cfg.delay with
  | No_delay -> 0.
  | Fixed d -> d
  | Uniform (lo, hi) ->
      if hi <= lo then lo else lo +. Random.State.float t.rng (hi -. lo)

let forward t =
  t.st.sent <- t.st.sent + 1;
  if t.partition || happens t t.cfg.loss then begin
    t.st.lost <- t.st.lost + 1;
    None
  end
  else begin
    let copies =
      if happens t t.cfg.duplicate then begin
        t.st.duplicated <- t.st.duplicated + 1;
        [ draw_delay t; draw_delay t ]
      end
      else [ draw_delay t ]
    in
    List.iter (fun d -> if d > 0. then t.st.delayed <- t.st.delayed + 1) copies;
    Some copies
  end

let reverse t =
  t.st.replies_sent <- t.st.replies_sent + 1;
  if t.partition || happens t t.cfg.reply_loss then begin
    t.st.replies_lost <- t.st.replies_lost + 1;
    false
  end
  else true
