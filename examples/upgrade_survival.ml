module App_sig = Controller.App_sig
(* Controller upgrades without losing application state (§3.4).

   The paper: "Upgrades to the controller codebase must be followed by a
   controller reboot. Such events also cause the SDN-App to unnecessarily
   reboot and lose state" — with recreation outages of up to 10 seconds.

   Here a learning switch builds up its MAC table, the controller is
   upgraded mid-run, and we measure how much re-flooding each architecture
   needs afterwards: the monolithic restart wipes the app; the LegoSDN
   upgrade only replaces the platform around the isolated app processes.

   Run with: dune exec examples/upgrade_survival.exe *)

open Netsim
module Runtime = Legosdn.Runtime
module Monolithic = Controller.Monolithic

let drive net step pairs =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      step ())
    pairs

let warmup = [ (1, 2); (2, 1); (1, 3); (3, 1); (2, 3); (3, 2) ]
let after = [ (1, 2); (2, 1); (1, 3) ]

(* Let the hardware rules idle out, so post-upgrade traffic genuinely
   consults the application again. *)
let expire_rules net =
  Clock.advance_by (Net.clock net) 120.;
  Net.tick net

let packet_ins_during net f =
  let before = (Net.stats net).Net.packet_ins in
  f ();
  (Net.stats net).Net.packet_ins - before

let () =
  Printf.printf "=== Surviving controller upgrades ===\n\n";

  (* Monolithic: upgrade = restart = app state loss. *)
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3) in
  let mono = Monolithic.create net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Monolithic.step mono;
  drive net (fun () -> Monolithic.step mono) warmup;
  let state_bytes m =
    Bytes.length (Controller.App_sig.snapshot (List.hd (Monolithic.apps m)))
  in
  let before_bytes = state_bytes mono in
  Printf.printf "monolithic: learned topology, upgrading controller...\n";
  Monolithic.restart mono;
  expire_rules net;
  Printf.printf "monolithic: app state %dB -> %dB across the upgrade\n"
    before_bytes (state_bytes mono);
  let mono_packet_ins =
    packet_ins_during net (fun () ->
        drive net (fun () -> Monolithic.step mono) after)
  in
  Printf.printf
    "monolithic: %d packet-ins to re-serve 3 flows (MAC table was wiped)\n\n"
    mono_packet_ins;

  (* LegoSDN: platform replaced, sandboxes (and their state) survive. *)
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3) in
  let lego = Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.step lego;
  drive net (fun () -> Runtime.step lego) warmup;
  let box = Option.get (Runtime.sandbox lego "learning_switch") in
  let before_bytes = Legosdn.Sandbox.state_size box in
  Printf.printf "legosdn: learned topology, upgrading controller...\n";
  Runtime.upgrade_controller lego;
  expire_rules net;
  Printf.printf "legosdn: app state %dB -> %dB across the upgrade\n"
    before_bytes (Legosdn.Sandbox.state_size box);
  let lego_packet_ins =
    packet_ins_during net (fun () ->
        drive net (fun () -> Runtime.step lego) after)
  in
  Printf.printf
    "legosdn: %d packet-ins to re-serve the same 3 flows (state survived)\n"
    lego_packet_ins;
  Printf.printf
    "\nFewer packet-ins after the upgrade = less re-flooding = shorter\n";
  Printf.printf "disruption. The paper reports up to 10 s outages for the\n";
  Printf.printf "monolithic state-recreation dance.\n"
