open Openflow
open Netsim
module Atomic_update = Legosdn.Atomic_update
module Checker = Invariants.Checker

let setup () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  let engine = Legosdn.Netlog.engine (Legosdn.Netlog.create net) in
  (net, engine)

let mac h = Types.mac_of_host h

let path_update =
  [
    (1, Message.flow_add (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 1 ]);
    (2, Message.flow_add (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 100 ]);
  ]

let test_good_update_commits () =
  let net, engine = setup () in
  (match Atomic_update.apply ~net ~engine ~app:"op" path_update with
  | Atomic_update.Committed -> ()
  | other -> Alcotest.failf "expected commit, got %s" (Atomic_update.describe other));
  T_util.checkb "path live" true (Net.reachable net 1 2)

let test_bad_update_rolls_back_everything () =
  let net, engine = setup () in
  (* Two good rules plus one that black-holes h2->h1 traffic. *)
  let update =
    path_update
    @ [ (2, Message.flow_add (Ofp_match.make ~dl_dst:(mac 1) ()) [ Action.Output 77 ]) ]
  in
  (match Atomic_update.apply ~net ~engine ~app:"op" update with
  | Atomic_update.Rolled_back (Atomic_update.Invariant_broken _) -> ()
  | other -> Alcotest.failf "expected invariant rollback, got %s" (Atomic_update.describe other));
  (* All-or-nothing: even the good rules are absent. *)
  List.iter
    (fun sid ->
      T_util.checki "nothing installed" 0
        (Flow_table.size (Net.switch net sid).Sw.table))
    [ 1; 2; 3 ]

let test_switch_rejection_rolls_back () =
  let net, engine = setup () in
  Net.apply_fault net (Net.Switch_down 2);
  ignore (Net.poll net);
  (* s3's half is fine; the dead s2 rejects its half. The batch must not
     leave s3's rule behind. (No rule here routes toward the dead switch,
     so the hypothetical invariant screen passes.) *)
  let update =
    [
      (3, Message.flow_add (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 100 ]);
      (2, Message.flow_add (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 100 ]);
    ]
  in
  (match Atomic_update.apply ~net ~engine ~app:"op" update with
  | Atomic_update.Rolled_back (Atomic_update.Switch_rejected (2, _)) -> ()
  | other -> Alcotest.failf "expected rejection by s2, got %s" (Atomic_update.describe other));
  T_util.checki "s3's rule rolled back too" 0
    (Flow_table.size (Net.switch net 3).Sw.table)

let test_custom_invariants () =
  let net, engine = setup () in
  (* An isolation policy between h1 and h3 vetoes a path between them. *)
  let invariants =
    Checker.Isolation { group_a = [ 1 ]; group_b = [ 3 ] } :: Checker.default
  in
  let update =
    [
      (1, Message.flow_add (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 1 ]);
      (2, Message.flow_add (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 2 ]);
      (3, Message.flow_add (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 100 ]);
    ]
  in
  match Atomic_update.apply ~invariants ~net ~engine ~app:"op" update with
  | Atomic_update.Rolled_back (Atomic_update.Invariant_broken violations) ->
      T_util.checkb "isolation violation named" true
        (List.exists
           (function Checker.Isolation_breached _ -> true | _ -> false)
           violations)
  | other -> Alcotest.failf "expected isolation veto, got %s" (Atomic_update.describe other)

let test_preexisting_damage_not_blamed () =
  let net, engine = setup () in
  (* Damage the network first, outside any transaction. *)
  ignore
    (Net.send net 3
       (Message.message
          (Message.Flow_mod
             (Message.flow_add (Ofp_match.make ~dl_dst:(mac 1) ()) [ Action.Output 99 ]))));
  match Atomic_update.apply ~net ~engine ~app:"op" path_update with
  | Atomic_update.Committed -> ()
  | other ->
      Alcotest.failf "pre-existing black hole wrongly blamed: %s"
        (Atomic_update.describe other)

let test_empty_update () =
  let net, engine = setup () in
  match Atomic_update.apply ~net ~engine ~app:"op" [] with
  | Atomic_update.Committed -> ignore net
  | other -> Alcotest.failf "empty update must commit, got %s" (Atomic_update.describe other)

let suite =
  [
    Alcotest.test_case "good update commits" `Quick test_good_update_commits;
    Alcotest.test_case "bad update rolls back everything" `Quick
      test_bad_update_rolls_back_everything;
    Alcotest.test_case "switch rejection rolls back" `Quick test_switch_rejection_rolls_back;
    Alcotest.test_case "custom invariants veto" `Quick test_custom_invariants;
    Alcotest.test_case "pre-existing damage not blamed" `Quick
      test_preexisting_damage_not_blamed;
    Alcotest.test_case "empty update" `Quick test_empty_update;
  ]
