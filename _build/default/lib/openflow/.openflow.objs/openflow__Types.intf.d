lib/openflow/types.mli: Format
