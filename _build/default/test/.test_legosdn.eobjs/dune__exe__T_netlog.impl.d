test/t_netlog.ml: Action Alcotest Clock Controller Flow_entry Flow_table Legosdn List Message Net Netsim Ofp_match Openflow QCheck2 QCheck_alcotest Sw T_util Topo_gen Types
