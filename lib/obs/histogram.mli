(** Log-bucketed latency histograms.

    Buckets are geometric: bucket 0 holds every sample [<= min_bound];
    bucket [i > 0] holds samples in [(min_bound * factor^(i-1),
    min_bound * factor^i]]. With the default factor of 2 a reported
    quantile [q] is an upper bound on the true sample quantile and at most
    a factor-2 overestimate — the property the test suite checks. *)

type t

val create : ?min_bound:float -> ?factor:float -> unit -> t
(** Default [min_bound] 1e-9 (one virtual/real nanosecond), [factor] 2. *)

val observe : t -> float -> unit
(** Record one sample. Negative samples are clamped into bucket 0. *)

val count : t -> int
val sum : t -> float
val min_seen : t -> float
(** [nan] while empty. *)

val max_seen : t -> float
(** [nan] while empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the upper bound of the bucket holding
    the [ceil (q * count)]-th smallest sample (at least the 1st). [0.] on
    an empty histogram. The bucket holding the sample also holds the true
    quantile, so [true_q <= quantile t q <= factor * true_q] for samples
    above [min_bound]. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val merge_into : dst:t -> t -> unit
(** Add [t]'s samples into [dst] (same [min_bound] and [factor] required;
    raises [Invalid_argument] otherwise). *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
(** One line: count, p50/p95/p99, max. *)
