open Openflow

type fault =
  | Link_down of Topology.node * Topology.node
  | Link_up of Topology.node * Topology.node
  | Switch_down of Types.switch_id
  | Switch_up of Types.switch_id
  | Port_down of Types.switch_id * Types.port_no
  | Port_up of Types.switch_id * Types.port_no
  | Channel_partition of Types.switch_id
  | Channel_heal of Types.switch_id
  | Channel_loss of Types.switch_id * float

type notification =
  | From_switch of Types.switch_id * Message.t
  | Switch_connected of Types.switch_id * Message.features
  | Switch_disconnected of Types.switch_id
  | Delivered of Topology.host * Packet.t

type stats = {
  mutable delivered : int;
  mutable delivered_to_dst : int;
  mutable blackholed : int;
  mutable looped : int;
  mutable packet_ins : int;
}

type t = {
  clock : Clock.t;
  topo : Topology.t;
  switches : (int, Sw.t) Hashtbl.t;
  channels : (int, Channel.t) Hashtbl.t;
  mutable pending : notification list;  (* reverse order *)
  mutable in_flight : (float * Types.switch_id * int option * Message.t) list;
      (* delayed controller-to-switch copies, unordered *)
  hop_limit : int;
  st : stats;
}

let queue t n = t.pending <- n :: t.pending

let create ?(hop_limit = 64) ?(channel = Channel.perfect) ?(channel_seed = 0)
    clock topo =
  let switches = Hashtbl.create 16 in
  let channels = Hashtbl.create 16 in
  let t =
    {
      clock;
      topo;
      switches;
      channels;
      pending = [];
      in_flight = [];
      hop_limit;
      st =
        {
          delivered = 0;
          delivered_to_dst = 0;
          blackholed = 0;
          looped = 0;
          packet_ins = 0;
        };
    }
  in
  List.iter
    (fun sid ->
      let port_nos = List.map fst (Topology.switch_ports topo sid) in
      let sw = Sw.create ~id:sid ~port_nos in
      Hashtbl.replace switches sid sw;
      Hashtbl.replace channels sid
        (Channel.create ~config:channel ~seed:(channel_seed + sid) ());
      queue t (Switch_connected (sid, Sw.features sw)))
    (Topology.switches topo);
  t

let topology t = t.topo
let clock t = t.clock

let switch t sid =
  match Hashtbl.find_opt t.switches sid with
  | Some sw -> sw
  | None -> raise Not_found

let channel t sid =
  match Hashtbl.find_opt t.channels sid with
  | Some ch -> ch
  | None -> raise Not_found

let stats t = t.st

let channel_totals t =
  let acc =
    {
      Channel.sent = 0;
      lost = 0;
      duplicated = 0;
      delayed = 0;
      replies_sent = 0;
      replies_lost = 0;
    }
  in
  Hashtbl.iter
    (fun _ ch ->
      let s = Channel.stats ch in
      acc.Channel.sent <- acc.Channel.sent + s.Channel.sent;
      acc.Channel.lost <- acc.Channel.lost + s.Channel.lost;
      acc.Channel.duplicated <- acc.Channel.duplicated + s.Channel.duplicated;
      acc.Channel.delayed <- acc.Channel.delayed + s.Channel.delayed;
      acc.Channel.replies_sent <- acc.Channel.replies_sent + s.Channel.replies_sent;
      acc.Channel.replies_lost <- acc.Channel.replies_lost + s.Channel.replies_lost)
    t.channels;
  acc

let dups_suppressed t =
  Hashtbl.fold (fun _ sw acc -> acc + sw.Sw.dups_suppressed) t.switches 0

(* Switch-to-controller messages cross the same degraded channel. *)
let queue_from_switch t sid msg =
  if Channel.reverse (channel t sid) then queue t (From_switch (sid, msg))

(* Propagate the data-plane effects of a forward_result outward from a
   switch, copy by copy, bounded by the hop limit. *)
let rec propagate t sid (fwd : Sw.forward_result) ~hops =
  let sw = switch t sid in
  List.iter
    (fun pi ->
      t.st.packet_ins <- t.st.packet_ins + 1;
      queue_from_switch t sid (Message.message (Message.Packet_in pi)))
    fwd.punts;
  List.iter
    (fun (pkt, out_port) ->
      Sw.account_tx sw out_port pkt;
      match Topology.peer t.topo (Topology.Switch sid) out_port with
      | Some { node = Topology.Host h; _ } ->
          t.st.delivered <- t.st.delivered + 1;
          if pkt.Packet.dl_dst = Types.mac_of_host h then
            t.st.delivered_to_dst <- t.st.delivered_to_dst + 1;
          queue t (Delivered (h, pkt))
      | Some { node = Topology.Switch next_sid; port = next_port } ->
          if hops >= t.hop_limit then t.st.looped <- t.st.looped + 1
          else begin
            let next_sw = switch t next_sid in
            if next_sw.up then
              let fwd' =
                Sw.process_packet next_sw ~now:(Clock.now t.clock)
                  ~in_port:next_port pkt
              in
              propagate t next_sid fwd' ~hops:(hops + 1)
            else t.st.blackholed <- t.st.blackholed + 1
          end
      | None -> t.st.blackholed <- t.st.blackholed + 1)
    fwd.transmits

(* Hand one delivered copy to the switch; surviving replies cross the
   reverse channel. *)
let deliver ?from t sid msg =
  let sw = switch t sid in
  let ch = channel t sid in
  let replies, fwd = Sw.handle_message ?from sw ~now:(Clock.now t.clock) msg in
  propagate t sid fwd ~hops:0;
  List.filter (fun _ -> Channel.reverse ch) replies

let send ?from t sid msg =
  match Hashtbl.find_opt t.switches sid with
  | None ->
      [ Message.message ~xid:msg.Message.xid
          (Message.Error (Message.Bad_request, "unknown switch")) ]
  | Some _ -> (
      match Channel.forward (channel t sid) with
      | None -> []  (* lost in transit: the caller sees silence *)
      | Some delays ->
          let now = Clock.now t.clock in
          List.concat_map
            (fun d ->
              if d <= 0. then deliver ?from t sid msg
              else begin
                t.in_flight <- (now +. d, sid, from, msg) :: t.in_flight;
                []
              end)
            delays)

(* Delayed copies whose time has come are delivered; their replies can no
   longer return synchronously and surface as notifications instead. *)
let process_in_flight t =
  let now = Clock.now t.clock in
  let due, rest =
    List.partition (fun (at, _, _, _) -> at <= now) t.in_flight
  in
  t.in_flight <- rest;
  List.iter
    (fun (_, sid, from, msg) ->
      List.iter
        (fun r -> queue t (From_switch (sid, r)))
        (deliver ?from t sid msg))
    (List.sort compare due)

let inject t h pkt =
  match Topology.host_attachment t.topo h with
  | None -> ()
  | Some (sid, port) -> (
      match Topology.peer t.topo (Topology.Host h) 1 with
      | None -> () (* access link down: packet lost at the NIC *)
      | Some _ ->
          let sw = switch t sid in
          if sw.up then begin
            let fwd =
              Sw.process_packet sw ~now:(Clock.now t.clock) ~in_port:port pkt
            in
            propagate t sid fwd ~hops:0
          end)

let poll t =
  process_in_flight t;
  let batch = List.rev t.pending in
  t.pending <- [];
  batch

let port_status_notification t sid port_no =
  let sw = switch t sid in
  match Sw.port sw port_no with
  | None -> ()
  | Some p ->
      if sw.up then
        queue_from_switch t sid
          (Message.message
             (Message.Port_status (Message.Port_modify, Sw.port_desc p)))

let set_link_state t link ~up =
  Topology.set_link link ~up;
  let update_endpoint (e : Topology.endpoint) =
    match e.node with
    | Topology.Switch sid ->
        let sw = switch t sid in
        ignore (Sw.set_port sw e.port ~up);
        port_status_notification t sid e.port
    | Topology.Host _ -> ()
  in
  update_endpoint link.Topology.a;
  update_endpoint link.Topology.b

let apply_fault t fault =
  match fault with
  | Link_down (na, nb) -> (
      match Topology.link_between t.topo na nb with
      | Some l -> set_link_state t l ~up:false
      | None -> ())
  | Link_up (na, nb) -> (
      match Topology.link_between t.topo na nb with
      | Some l -> set_link_state t l ~up:true
      | None -> ())
  | Port_down (sid, port) -> (
      match Topology.link_at t.topo (Topology.Switch sid) port with
      | Some l -> set_link_state t l ~up:false
      | None -> ())
  | Port_up (sid, port) -> (
      match Topology.link_at t.topo (Topology.Switch sid) port with
      | Some l -> set_link_state t l ~up:true
      | None -> ())
  | Switch_down sid ->
      let sw = switch t sid in
      if sw.up then begin
        Sw.set_up sw ~up:false;
        (* Carrier drops on every attached link; peers see port-down. *)
        List.iter
          (fun (_, l) -> set_link_state t l ~up:false)
          (Topology.switch_ports t.topo sid);
        queue t (Switch_disconnected sid)
      end
  | Channel_partition sid -> Channel.set_partitioned (channel t sid) true
  | Channel_heal sid -> Channel.set_partitioned (channel t sid) false
  | Channel_loss (sid, p) -> Channel.set_loss (channel t sid) p
  | Switch_up sid ->
      let sw = switch t sid in
      if not sw.up then begin
        Sw.set_up sw ~up:true;
        (* Reboot semantics: empty table, empty buffers, no dedup memory. *)
        Flow_table.clear sw.table;
        Hashtbl.reset sw.buffers;
        Sw.reset_dedup sw;
        List.iter
          (fun (_, l) ->
            (* Only links whose far end is also alive come back. *)
            let far_alive =
              let far (e : Topology.endpoint) =
                match e.node with
                | Topology.Switch other ->
                    other = sid || (switch t other).up
                | Topology.Host _ -> true
              in
              far l.Topology.a && far l.Topology.b
            in
            if far_alive then set_link_state t l ~up:true)
          (Topology.switch_ports t.topo sid);
        queue t (Switch_connected (sid, Sw.features sw))
      end

let tick t =
  process_in_flight t;
  let now = Clock.now t.clock in
  List.iter
    (fun sid ->
      let sw = switch t sid in
      if sw.up then
        List.iter
          (fun msg -> queue_from_switch t sid msg)
          (Sw.expire_flows sw ~now))
    (Topology.switches t.topo)

type probe_result = {
  reached : Topology.host list;
  punted_at : Types.switch_id list;
  blackholed_at : Types.switch_id list;
  looped : bool;
  path : (Types.switch_id * Types.port_no) list;
}

(* Pure resolution of a staged output for probing: same logic as the
   switch's, without mutating drop counters. *)
let probe_resolve sw ~in_port (pkt, out) =
  let up_ports_except skip =
    Sw.port_list sw
    |> List.filter (fun (p : Sw.port_state) ->
           p.port_up && p.port_no <> skip)
    |> List.map (fun (p : Sw.port_state) -> p.port_no)
  in
  if out = Types.port_flood || out = Types.port_all then
    List.map (fun p -> (pkt, p)) (up_ports_except in_port)
  else if out = Types.port_in_port then [ (pkt, in_port) ]
  else if
    out = Types.port_controller || out = Types.port_local
    || out = Types.port_none
  then []
  else
    match Sw.port sw out with
    | Some p when p.port_up -> [ (pkt, out) ]
    | Some _ | None -> []

let probe t h pkt =
  let reached = ref [] in
  let punted = ref [] in
  let blackholed = ref [] in
  let looped = ref false in
  let path = ref [] in
  let seen = Hashtbl.create 32 in
  let now = Clock.now t.clock in
  let rec visit sid in_port pkt hops =
    path := (sid, in_port) :: !path;
    let key = (sid, in_port, pkt) in
    if Hashtbl.mem seen key || hops >= t.hop_limit then looped := true
    else begin
      Hashtbl.replace seen key ();
      let sw = switch t sid in
      if not sw.up then blackholed := sid :: !blackholed
      else
        match Flow_table.lookup sw.table ~now ~in_port pkt with
        | None -> punted := sid :: !punted
        | Some entry ->
            let staged = Action.apply_staged entry.actions pkt in
            let copies =
              List.concat_map (probe_resolve sw ~in_port) staged
            in
            if copies = [] && Action.is_drop entry.actions then
              (* explicit drop rule: intentional, not a black hole *)
              ()
            else if copies = [] then blackholed := sid :: !blackholed
            else
              List.iter
                (fun (pkt', out_port) ->
                  match Topology.peer t.topo (Topology.Switch sid) out_port with
                  | Some { node = Topology.Host h'; _ } ->
                      reached := h' :: !reached
                  | Some { node = Topology.Switch sid'; port = port' } ->
                      visit sid' port' pkt' (hops + 1)
                  | None -> blackholed := sid :: !blackholed)
                copies
    end
  in
  (match Topology.host_attachment t.topo h with
  | Some (sid, port) when Topology.peer t.topo (Topology.Host h) 1 <> None ->
      visit sid port pkt 0
  | Some _ | None -> ());
  {
    reached = List.sort_uniq compare !reached;
    punted_at = List.sort_uniq compare !punted;
    blackholed_at = List.sort_uniq compare !blackholed;
    looped = !looped;
    path = List.rev !path;
  }

let reachable t src dst =
  let pkt = Packet.tcp ~src_host:src ~dst_host:dst () in
  List.mem dst (probe t src pkt).reached

let connectivity t =
  let hosts = Topology.hosts t.topo in
  let pairs = ref 0 and ok = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            incr pairs;
            if reachable t src dst then incr ok
          end)
        hosts)
    hosts;
  if !pairs = 0 then 1.0 else float !ok /. float !pairs
