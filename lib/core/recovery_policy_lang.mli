(** The "simple policy language" the paper proposes for specifying the
    availability-correctness trade-off per application and event.

    Grammar (one directive per line; [#] starts a comment):

    {v
    app <name|*> event <kind|*> => <no-compromise|absolute|equivalence>
    default => <no-compromise|absolute|equivalence>
    v}

    Rules apply first-match-wins in file order; at most one [default] line
    is allowed, and it may appear anywhere. *)

type error = { line : int; message : string }

val parse : string -> (Recovery_policy.t, error) result

val parse_exn : string -> Recovery_policy.t
(** Raises [Failure] with a located message. *)

val print : Recovery_policy.t -> string
(** Render a policy back to the language; [parse (print p)] yields a policy
    equal to [p]. *)

val pp_error : Format.formatter -> error -> unit
