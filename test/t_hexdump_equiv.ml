module App_sig = Controller.App_sig
(* Hexdump formatting and the sandbox recovery-equivalence property. *)

open Openflow
module Sandbox = Legosdn.Sandbox
module Event = Controller.Event

let test_hexdump_layout () =
  let dump = Hexdump.of_bytes (Bytes.of_string "OpenFlow rules everything ok?!") in
  let lines = String.split_on_char '\n' dump |> List.filter (( <> ) "") in
  T_util.checki "two lines for 30 bytes" 2 (List.length lines);
  let first = List.hd lines in
  T_util.checkb "offset column" true (String.length first > 8 && String.sub first 0 8 = "00000000");
  T_util.checkb "ascii gutter" true (String.contains first '|')

let test_hexdump_nonprintable () =
  let dump = Hexdump.of_bytes (Bytes.of_string "\x00\x01ab") in
  T_util.checkb "nonprintables dotted" true
    (let gutter = String.index dump '|' in
     String.sub dump (gutter + 1) 4 = "..ab")

let test_hexdump_empty () =
  Alcotest.(check string) "empty input, empty dump" "" (Hexdump.of_bytes Bytes.empty)

let test_hexdump_message () =
  let dump = Hexdump.of_message (Message.message ~xid:7 Message.Hello) in
  (* version 01, type 00, length 0008, xid 00000007 *)
  T_util.checkb "wire header visible" true
    (String.length dump > 0
     && String.sub dump 10 23 = "01 00 00 08 00 00 00 07")

(* Recovery equivalence: restoring the checkpoint and replaying the journal
   must land the app in exactly the state it already had — for any packet
   sequence and any checkpoint cadence. *)
let prop_recover_is_identity =
  QCheck2.Test.make ~name:"sandbox recovery reconstructs state exactly" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 7)
        (list_size (int_range 1 20) (pair (int_range 1 5) (int_range 1 5))))
    (fun (k, pairs) ->
      let box = Sandbox.create ~checkpoint_every:k (App_sig.app (module Apps.Learning_switch)) in
      List.iter
        (fun (src, dst) ->
          let ev =
            Event.Packet_in
              ( 1,
                {
                  Message.pi_buffer_id = None;
                  pi_in_port = 100 + src;
                  pi_reason = Message.No_match;
                  pi_packet = T_util.tcp_packet src dst;
                } )
          in
          Sandbox.prepare box;
          match Sandbox.deliver box T_util.null_context ev with
          | Sandbox.Done _ -> Sandbox.confirm box ev
          | _ -> ())
        pairs;
      let before = Sandbox.snapshot_bytes box in
      let _ = Sandbox.recover box T_util.null_context in
      Sandbox.snapshot_bytes box = before)

let suite =
  [
    Alcotest.test_case "hexdump layout" `Quick test_hexdump_layout;
    Alcotest.test_case "hexdump nonprintables" `Quick test_hexdump_nonprintable;
    Alcotest.test_case "hexdump empty" `Quick test_hexdump_empty;
    Alcotest.test_case "hexdump message header" `Quick test_hexdump_message;
    QCheck_alcotest.to_alcotest prop_recover_is_identity;
  ]
