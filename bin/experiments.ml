(* Regenerates every table and figure of the paper (and the quantitative
   claims its text makes) from the simulator. See EXPERIMENTS.md for the
   index and DESIGN.md §4 for the mapping.

   Usage: dune exec bin/experiments.exe -- --exp all
          dune exec bin/experiments.exe -- --exp fig1 --exp availability *)

open Netsim
module Event = Controller.Event
module Command = Controller.Command
module App_sig = Controller.App_sig
module Monolithic = Controller.Monolithic
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox
module Metrics = Legosdn.Metrics
module Recovery_policy = Legosdn.Recovery_policy
module Crashpad = Legosdn.Crashpad
module Ticket = Legosdn.Ticket
module Scenario = Workload.Scenario
module Traffic = Workload.Traffic

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n"

let row fmt = Printf.printf fmt

let packet_in_event ?(sid = 1) ?(in_port = 100) ?(dport = 80) src dst =
  Event.Packet_in
    ( sid,
      {
        Openflow.Message.pi_buffer_id = None;
        pi_in_port = in_port;
        pi_reason = Openflow.Message.No_match;
        pi_packet = Openflow.Packet.tcp ~src_host:src ~dst_host:dst ~dport ();
      } )

let config_with ?(checkpoint_every = 1) policy =
  {
    Runtime.default_config with
    Runtime.checkpoint_every;
    Runtime.crashpad = { Crashpad.default_config with Crashpad.policy };
  }

(* ------------------------------------------------------------------ *)

let table1 () =
  section "E1 / Table 1" "SDN stack illustration";
  row "  %-28s| %-18s| %s\n" "Generic controller stack" "FloodLight stack"
    "This reproduction";
  row "  %-28s| %-18s| %s\n" "----------------------------" "------------------"
    "-----------------------";
  List.iter
    (fun (generic, floodlight, here) ->
      row "  %-28s| %-18s| %s\n" generic floodlight here)
    [
      ("Application", "RouteFlow", "lib/apps (router, lb, fw, ...)");
      ("Controller", "FloodLight", "lib/controller + lib/core");
      ("Server Operating System", "Ubuntu", "OCaml runtime (simulated)");
      ("Server Hardware", "Dell Blade", "netsim virtual host");
    ]

let table2 () =
  section "E2 / Table 2" "survey of SDN applications (the implemented suite)";
  row "  %-22s| %-14s| %s\n" "Application" "Developer" "Purpose";
  row "  %-22s| %-14s| %s\n" "----------------------" "--------------"
    "----------------------------";
  List.iter
    (fun (name, dev, purpose) -> row "  %-22s| %-14s| %s\n" name dev purpose)
    Apps.Suite.table2

(* ------------------------------------------------------------------ *)

let standard_traffic ?(poison_every = 0.) duration =
  let base =
    Traffic.schedule
      (Traffic.all_pairs_once ~hosts:[ 1; 2; 3 ] ~start:0.3 ~spacing:0.15
      @ Traffic.uniform_pairs ~seed:11 ~hosts:[ 1; 2; 3 ] ~flows:40 ~duration ())
  in
  (* Poisoned packets: their port-6666 payload trips the data-dependent
     parser bug in the app under test whenever they reach the controller. *)
  let poison =
    if poison_every <= 0. then []
    else
      let rec go t acc =
        if t >= duration then List.rev acc
        else
          go (t +. poison_every)
            ({
               Traffic.at = t;
               src = 1;
               packet = Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ~dport:6666 ();
             }
            :: acc)
      in
      go 1.0 []
  in
  List.stable_sort
    (fun a b -> compare a.Traffic.at b.Traffic.at)
    (base @ poison)

let poisoned_bug =
  Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 6666) Apps.Bug_model.Crash

let fig1_apps () : App_sig.app list =
  [
    Apps.Faulty.wrap ~bug:poisoned_bug (App_sig.app (module Apps.Learning_switch));
    (App_sig.app (module Apps.Firewall));
    (App_sig.app (module Apps.Monitor));
  ]

let fig1 () =
  section "E3 / Figure 1"
    "fate sharing: monolithic vs LegoSDN under one buggy app";
  let duration = 20. in
  let scenario =
    Scenario.make
      ~make_topology:(fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
      ~duration
      ~traffic:(standard_traffic ~poison_every:5. duration)
      ~tick_interval:1. ~restart_delay:10. ()
  in
  let mono =
    Scenario.run scenario ~make_driver:(fun net ->
        Scenario.monolithic_driver (Monolithic.create net (fig1_apps ())))
  in
  let lego =
    Scenario.run scenario ~make_driver:(fun net ->
        Scenario.legosdn_driver (Runtime.create net (fig1_apps ())))
  in
  row "  %-38s| %-12s| %s\n" "" "monolithic" "legosdn";
  row "  %-38s| %-12s| %s\n" "--------------------------------------"
    "------------" "------------";
  let pct x = Printf.sprintf "%.2f%%" (100. *. x) in
  row "  %-38s| %-12s| %s\n" "controller availability"
    (pct mono.Scenario.controller_availability)
    (pct lego.Scenario.controller_availability);
  row "  %-38s| %-12d| %d\n" "whole-stack crashes"
    mono.Scenario.controller_crashes lego.Scenario.controller_crashes;
  List.iter
    (fun app ->
      let avail r =
        match List.assoc_opt app r.Scenario.app_availability with
        | Some a -> pct a
        | None -> "-"
      in
      row "  %-38s| %-12s| %s\n"
        (Printf.sprintf "%s availability" app)
        (avail mono) (avail lego))
    [ "learning_switch"; "firewall"; "monitor" ];
  row "  %-38s| %-12s| %s\n" "mean connectivity"
    (pct mono.Scenario.mean_connectivity)
    (pct lego.Scenario.mean_connectivity);
  row "  %-38s| %-12d| %d\n" "packets delivered" mono.Scenario.events_delivered
    lego.Scenario.events_delivered;
  row "\n  Reading: the buggy learning switch kills the whole monolithic\n";
  row "  stack (taking the blameless firewall and monitor with it); under\n";
  row "  LegoSDN only the failure is absorbed and everything keeps running.\n"

(* ------------------------------------------------------------------ *)

let availability () =
  section "E7" "availability under app-failure rate (poison-interval sweep)";
  let duration = 30. in
  let variants =
    [
      ("monolithic", `Mono);
      ("legosdn/no-compromise", `Lego (Recovery_policy.uniform Recovery_policy.No_compromise));
      ("legosdn/absolute", `Lego (Recovery_policy.uniform Recovery_policy.Absolute));
      ("legosdn/equivalence", `Lego (Recovery_policy.uniform Recovery_policy.Equivalence));
    ]
  in
  row "  %-24s| %-10s| %-11s| %-10s| %-13s| %s\n" "architecture" "poison (s)"
    "ctrl avail" "app avail" "connectivity" "stack crashes";
  row "  %s\n" (String.make 85 '-');
  List.iter
    (fun poison_every ->
      List.iter
        (fun (label, kind) ->
          let apps () : App_sig.app list =
            [
              Apps.Faulty.wrap ~bug:poisoned_bug (App_sig.app (module Apps.Learning_switch));
              (App_sig.app (module Apps.Firewall));
            ]
          in
          let scenario =
            Scenario.make
              ~make_topology:(fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
              ~duration
              ~traffic:(standard_traffic ~poison_every duration)
              ~tick_interval:1. ~restart_delay:10. ()
          in
          let report =
            match kind with
            | `Mono ->
                Scenario.run scenario ~make_driver:(fun net ->
                    Scenario.monolithic_driver (Monolithic.create net (apps ())))
            | `Lego policy ->
                Scenario.run scenario ~make_driver:(fun net ->
                    Scenario.legosdn_driver
                      (Runtime.create ~config:(config_with policy) net (apps ())))
          in
          let app_avail =
            Option.value
              (List.assoc_opt "learning_switch" report.Scenario.app_availability)
              ~default:0.
          in
          row "  %-24s| %-10.1f| %10.2f%%| %9.2f%%| %12.2f%%| %d\n" label
            poison_every
            (100. *. report.Scenario.controller_availability)
            (100. *. app_avail)
            (100. *. report.Scenario.mean_connectivity)
            report.Scenario.controller_crashes)
        variants)
    [ 1.0; 3.0; 10.0 ]

(* ------------------------------------------------------------------ *)

let ckpt_k () =
  section "E5" "checkpoint-every-k: snapshot cost vs recovery replay (§5)";
  row "  %-4s| %-12s| %-16s| %-10s| %-9s| %s\n" "k" "checkpoints"
    "snapshot bytes" "crashes" "replayed" "dropped-in-replay";
  row "  %s\n" (String.make 75 '-');
  List.iter
    (fun k ->
      let clock = Clock.create () in
      let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
      (* A data-dependent parser bug: packets to port 6666 are poisoned.
         One arrives every 20 events. *)
      let bug = Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 6666) Apps.Bug_model.Crash in
      let rt =
        Runtime.create
          ~config:(config_with ~checkpoint_every:k (Recovery_policy.uniform Recovery_policy.Absolute))
          net
          [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
      in
      Runtime.step rt;
      for i = 1 to 60 do
        Clock.advance_by clock 0.05;
        let dport = if i mod 20 = 0 then 6666 else 80 in
        Runtime.dispatch_event rt
          (packet_in_event ~dport (1 + (i mod 3)) (1 + ((i + 1) mod 3)))
      done;
      let box = Option.get (Runtime.sandbox rt "learning_switch") in
      let store = Sandbox.checkpoint_store box in
      let m = Runtime.metrics rt in
      row "  %-4d| %-12d| %-16d| %-10d| %-9d| %d\n" k
        (Legosdn.Checkpoint.snapshots_taken store)
        (Legosdn.Checkpoint.bytes_written store)
        (Metrics.crashes m) (Metrics.replayed m)
        (Metrics.dropped_in_replay m))
    [ 1; 2; 5; 10; 25 ]

(* ------------------------------------------------------------------ *)

let partial_crasher n : App_sig.app =
  App_sig.app
  (module struct
    type state = int

    let name = "partial_crasher"
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0

    let handle _ st = function
      | Event.Packet_in _ ->
          let cmds =
            List.init n (fun i ->
                Command.install 1
                  (Openflow.Ofp_match.make ~tp_src:(i + 1) ())
                  [ Openflow.Action.Output 1 ])
          in
          raise (App_sig.Crash_with_partial cmds)
      | _ -> (st, [])
  end)

let recovery () =
  section "E6" "recovery anatomy vs transaction size";
  row "  %-10s| %-13s| %-14s| %-15s| %s\n" "txn ops" "rolled back"
    "detect (ms)" "table intact" "ticket filed";
  row "  %s\n" (String.make 70 '-');
  List.iter
    (fun n ->
      let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
      let rt =
        Runtime.create
          ~config:(config_with (Recovery_policy.uniform Recovery_policy.Absolute))
          net [ partial_crasher n ]
      in
      Runtime.step rt;
      Runtime.dispatch_event rt (packet_in_event 1 2);
      let nl = Option.get (Runtime.netlog rt) in
      let detect =
        Legosdn.Detector.detection_delay Legosdn.Detector.default_timing
          (Legosdn.Detector.Fail_stop { detail = ""; partial = [] })
      in
      row "  %-10d| %-13d| %-14.1f| %-15b| %b\n" n
        (Legosdn.Netlog.ops_rolled_back nl)
        (detect *. 1000.)
        (Flow_table.size (Net.switch net 1).Sw.table = 0)
        (List.length (Runtime.tickets rt) = 1))
    [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)

let netlog_exp () =
  section "E8" "NetLog invertibility: randomized rollback identity";
  let trials = 300 in
  let rng = Random.State.make [| 2014 |] in
  let mismatches = ref 0 in
  let ops_total = ref 0 in
  for _ = 1 to trials do
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
    ignore (Net.poll net);
    let nl = Legosdn.Netlog.create net in
    let random_pattern () =
      Openflow.Ofp_match.make
        ?tp_dst:(if Random.State.bool rng then Some 80 else None)
        ?dl_dst:
          (if Random.State.bool rng then
             Some (Openflow.Types.mac_of_host (1 + Random.State.int rng 3))
           else None)
        ()
    in
    let random_fm () =
      let pattern = random_pattern () in
      let priority = 10 + (10 * Random.State.int rng 2) in
      match Random.State.int rng 3 with
      | 0 ->
          Openflow.Message.flow_add ~priority pattern
            [ Openflow.Action.Output (1 + Random.State.int rng 2) ]
      | 1 -> Openflow.Message.flow_delete ~priority pattern
      | _ ->
          {
            (Openflow.Message.flow_add ~priority pattern
               [ Openflow.Action.Output 1 ])
            with
            Openflow.Message.command = Openflow.Message.Modify;
          }
    in
    (* Committed pre-state. *)
    let pre = Legosdn.Netlog.begin_txn nl ~app:"pre" in
    for _ = 1 to 1 + Random.State.int rng 4 do
      ignore
        (Legosdn.Netlog.apply nl pre
           (Command.Flow (1 + Random.State.int rng 3, random_fm ())))
    done;
    Legosdn.Netlog.commit nl pre;
    let shape () =
      List.map
        (fun sid ->
          Flow_table.entries (Net.switch net sid).Sw.table
          |> List.map (fun (e : Flow_entry.t) ->
                 (e.pattern, e.priority, e.actions, e.idle_timeout, e.hard_timeout))
          |> List.sort compare)
        [ 1; 2; 3 ]
    in
    let before = shape () in
    let txn = Legosdn.Netlog.begin_txn nl ~app:"test" in
    let n_ops = 1 + Random.State.int rng 5 in
    for _ = 1 to n_ops do
      ignore
        (Legosdn.Netlog.apply nl txn
           (Command.Flow (1 + Random.State.int rng 3, random_fm ())))
    done;
    ops_total := !ops_total + n_ops;
    Legosdn.Netlog.abort nl txn;
    if shape () <> before then incr mismatches
  done;
  row "  transactions tested : %d (%d ops)\n" trials !ops_total;
  row "  rollback mismatches : %d (expected 0)\n" !mismatches

let ablation_buffer () =
  section "E9" "ablation: NetLog vs the prototype's delay buffer (§4.1)";
  let run engine_of =
    let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
    ignore (Net.poll net);
    let engine = engine_of net in
    (* A transaction that installs then reads. *)
    let txn = engine.Legosdn.Txn_engine.begin_txn ~app:"probe" in
    ignore
      (txn.Legosdn.Txn_engine.apply
         (Command.Flow
            (1, Openflow.Message.flow_add Openflow.Ofp_match.any [ Openflow.Action.Output 1 ])));
    let visible_mid_txn = Flow_table.size (Net.switch net 1).Sw.table = 1 in
    let replies =
      txn.Legosdn.Txn_engine.apply
        (Command.Stats (1, Openflow.Message.Flow_stats_request Openflow.Ofp_match.any))
    in
    let read_sees_own_write =
      match replies with
      | [ { Openflow.Message.payload =
              Openflow.Message.Stats_reply (Openflow.Message.Flow_stats_reply l);
            _ } ] ->
          l <> []
      | _ -> false
    in
    txn.Legosdn.Txn_engine.abort ();
    let clean_after_abort = Flow_table.size (Net.switch net 1).Sw.table = 0 in
    (engine.Legosdn.Txn_engine.engine_name, visible_mid_txn, read_sees_own_write,
     clean_after_abort)
  in
  let results =
    [
      run (fun net -> Legosdn.Netlog.engine (Legosdn.Netlog.create net));
      run (fun net -> Legosdn.Delay_buffer.engine (Legosdn.Delay_buffer.create net));
    ]
  in
  row "  %-14s| %-22s| %-22s| %s\n" "engine" "rules live mid-txn"
    "reads see own writes" "clean after abort";
  row "  %s\n" (String.make 80 '-');
  List.iter
    (fun (name, live, rw, clean) ->
      row "  %-14s| %-22b| %-22b| %b\n" name live rw clean)
    results;
  row "\n  (Wall-clock costs for both engines: bench/main.exe, cluster E8-E9.)\n"

(* ------------------------------------------------------------------ *)

let bugstats () =
  section "E10" "FlowScale bug-tracker shape (synthetic corpus, §2.1)";
  let entries = Workload.Bug_corpus.flowscale_like in
  List.iter
    (fun (sev, n) ->
      row "  %-14s: %2d / %d (%.0f%%)\n"
        (Workload.Bug_corpus.severity_name sev)
        n (List.length entries)
        (100. *. float n /. float (List.length entries)))
    (Workload.Bug_corpus.stats entries);
  row "  paper reports 16%% catastrophic; corpus reproduces %.0f%%\n"
    (100. *. Workload.Bug_corpus.catastrophic_fraction entries);
  row "  executable catastrophic bug models: %d\n"
    (List.length (Workload.Bug_corpus.executable_bugs entries))

(* ------------------------------------------------------------------ *)

let nversion_exp () =
  section "E11" "software diversity: majority voting masks a byzantine version";
  let byzantine_router =
    Apps.Faulty.wrap
      ~bug:
        (Apps.Bug_model.make
           (Apps.Bug_model.On_kind Event.K_packet_in)
           Apps.Bug_model.Byzantine_blackhole)
      (App_sig.app (Apps.Router.variant "router_team_b"))
  in
  let run label apps =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
    let rt = Runtime.create ~config:(config_with (Recovery_policy.uniform Recovery_policy.Absolute)) net apps in
    Runtime.step rt;
    for i = 1 to 12 do
      Clock.advance_by clock 0.05;
      Net.inject net (1 + (i mod 3))
        (Openflow.Packet.tcp ~src_host:(1 + (i mod 3))
           ~dst_host:(1 + ((i + 1) mod 3))
           ());
      Runtime.step rt
    done;
    let m = Runtime.metrics rt in
    row "  %-28s| byzantine blocked: %2d | connectivity: %3.0f%%\n" label
      (Metrics.byzantine_blocked m)
      (100. *. Net.connectivity net)
  in
  let module Voted =
    Legosdn.Nversion.Make3
      (Apps.Router)
      ((val byzantine_router : App_sig.INTENT_APP))
      ((val Apps.Router.variant ~prefer_high_ports:true "router_team_c"))
  in
  run "byzantine router alone" [ byzantine_router ];
  run "3-version voted bundle" [ App_sig.app (module Voted) ];
  row "\n  Reading: alone, every poisoned output must be caught by the\n";
  row "  invariant checker; inside the bundle the two healthy versions\n";
  row "  out-vote it and nothing bad even reaches the checker.\n"

(* ------------------------------------------------------------------ *)

let clone_exp () =
  section "E12" "clone switch-over vs non-deterministic crashes (§5)";
  let bug p =
    Apps.Bug_model.make (Apps.Bug_model.With_probability (p, 99)) Apps.Bug_model.Crash
  in
  let count_crashes (module A : App_sig.INTENT_APP) events =
    let crashes = ref 0 in
    let st = ref (A.init ()) in
    let ctx : App_sig.context =
      {
        now = (fun () -> 0.);
        switches = (fun () -> []);
        switch_ports = (fun _ -> []);
        links = (fun () -> []);
        host_location = (fun _ -> None);
      }
    in
    for i = 1 to events do
      match A.handle ctx !st (packet_in_event (1 + (i mod 3)) 2) with
      | st', _ -> st := st'
      | exception _ -> incr crashes
    done;
    !crashes
  in
  row "  %-8s| %-18s| %s\n" "p" "crashes (plain)" "crashes (with clone)";
  row "  %s\n" (String.make 55 '-');
  List.iter
    (fun p ->
      let plain =
        count_crashes (Apps.Faulty.wrap ~bug:(bug p) (App_sig.app (module Apps.Hub))) 200
      in
      let module Cloned =
        Legosdn.Clone_runner.Make
          ((val Apps.Faulty.wrap ~bug:(bug p) (App_sig.app (module Apps.Hub))))
      in
      let masked = count_crashes (App_sig.app (module Cloned)) 200 in
      row "  %-8.2f| %-18d| %d\n" p plain masked)
    [ 0.1; 0.3; 0.5 ]

(* ------------------------------------------------------------------ *)

let sts_exp () =
  section "E13" "STS-style minimal causal sequences (§5)";
  let ctx : App_sig.context =
    {
      now = (fun () -> 0.);
      switches = (fun () -> []);
      switch_ports = (fun _ -> []);
      links = (fun () -> []);
      host_location = (fun _ -> None);
    }
  in
  let module Cumulative = struct
    type state = { saw80 : bool; saw443 : bool }

    let name = "cumulative"
    let subscriptions = [ Event.K_packet_in ]
    let init () = { saw80 = false; saw443 = false }

    let handle _ st = function
      | Event.Packet_in (_, pi) ->
          let st =
            match pi.Openflow.Message.pi_packet.Openflow.Packet.tp_dst with
            | 80 -> { st with saw80 = true }
            | 443 -> { st with saw443 = true }
            | _ -> st
          in
          if st.saw80 && st.saw443 then failwith "cumulative";
          (st, [])
      | _ -> (st, [])
  end in
  let noise = [ 22; 53; 8080; 80; 25; 123; 443; 179; 110 ] in
  let trace = List.map (fun dport -> packet_in_event ~dport 1 2) noise in
  let minimal, calls = Legosdn.Sts.minimize (module Cumulative) ctx trace in
  row "  trace length        : %d events\n" (List.length trace);
  row "  minimal sequence    : %d events\n" (List.length minimal);
  row "  oracle invocations  : %d\n" calls;
  List.iter
    (fun k ->
      row "  with k=%-2d checkpoints, roll back to event index %d\n" k
        (Legosdn.Sts.checkpoint_to_roll_back_to ~trace ~minimal
           ~checkpoint_every:k))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)

let upgrade_exp () =
  section "E14" "controller upgrade: state survival (§3.4)";
  let learn net step =
    List.iter
      (fun (src, dst) ->
        Clock.advance_by (Net.clock net) 0.1;
        Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
        step ())
      [ (1, 2); (2, 1); (1, 2) ]
  in
  (* LegoSDN upgrade. *)
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
  let rt = Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.step rt;
  learn net (fun () -> Runtime.step rt);
  let box = Option.get (Runtime.sandbox rt "learning_switch") in
  let before = Sandbox.state_size box in
  Runtime.upgrade_controller rt;
  let lego_preserved = Sandbox.state_size box = before in
  (* Monolithic restart. *)
  let net2 = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
  let mono = Monolithic.create net2 [ (App_sig.app (module Apps.Learning_switch)) ] in
  Monolithic.step mono;
  learn net2 (fun () -> Monolithic.step mono);
  let state_of m = App_sig.snapshot (List.hd (Monolithic.apps m)) in
  let learned = state_of mono in
  Monolithic.restart mono;
  let mono_preserved = state_of mono = learned in
  row "  %-24s| %s\n" "architecture" "app state survives upgrade?";
  row "  %s\n" (String.make 55 '-');
  row "  %-24s| %b\n" "monolithic restart" mono_preserved;
  row "  %-24s| %b\n" "legosdn upgrade" lego_preserved;
  row "\n  (The paper cites state-recreation outages of up to 10 s after\n";
  row "  monolithic controller upgrades.)\n"

(* ------------------------------------------------------------------ *)

let limits_exp () =
  section "E15" "per-app resource limits contain a leaking app (§3.4)";
  let run limit =
    let bug =
      Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
        (Apps.Bug_model.Leak 20_000)
    in
    let config =
      {
        Runtime.default_config with
        Runtime.crashpad =
          {
            Crashpad.default_config with
            Crashpad.limits =
              {
                Legosdn.Resources.max_state_bytes = limit;
                max_commands_per_event = None;
              };
          };
      }
    in
    let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
    let rt =
      Runtime.create ~config net
        [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
    in
    Runtime.step rt;
    for i = 1 to 20 do
      Runtime.dispatch_event rt (packet_in_event (1 + (i mod 2)) 2)
    done;
    let box = Option.get (Runtime.sandbox rt "learning_switch") in
    (Sandbox.state_size box, Metrics.resource_breaches (Runtime.metrics rt))
  in
  let unlimited_size, _ = run None in
  let limited_size, breaches = run (Some 100_000) in
  row "  %-28s| %-16s| %s\n" "configuration" "state bytes" "breaches";
  row "  %s\n" (String.make 60 '-');
  row "  %-28s| %-16d| %s\n" "no limit (rogue app grows)" unlimited_size "-";
  row "  %-28s| %-16d| %d\n" "100 kB limit enforced" limited_size breaches

(* ------------------------------------------------------------------ *)

let latency_exp () =
  section "E4" "isolation overhead: serialized bytes per event (virtual view)";
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3) in
  let rt = Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.step rt;
  let box = Option.get (Runtime.sandbox rt "learning_switch") in
  let before = ref (Sandbox.rpc_bytes box) in
  row "  %-34s| %s\n" "event" "RPC bytes (event + commands)";
  row "  %s\n" (String.make 65 '-');
  List.iter
    (fun (label, ev) ->
      Runtime.dispatch_event rt ev;
      let now = Sandbox.rpc_bytes box in
      row "  %-34s| %d\n" label (now - !before);
      before := now)
    [
      ("packet_in (miss, flood)", packet_in_event 1 2);
      ("packet_in (hit, install+out)", packet_in_event ~sid:1 ~in_port:1 2 1);
      ("switch_down", Event.Switch_down 3);
    ];
  row "\n  (Wall-clock latency comparison: bench/main.exe, cluster E4.)\n"

(* ------------------------------------------------------------------ *)

let quarantine_exp () =
  section "E16" "event quarantine: multi-transaction failures (§5)";
  let run_with quarantine =
    let config =
      {
        Runtime.default_config with
        Runtime.crashpad =
          {
            Crashpad.default_config with
            Crashpad.policy = Recovery_policy.uniform Recovery_policy.Absolute;
            Crashpad.quarantine;
          };
      }
    in
    let bug =
      Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 6666) Apps.Bug_model.Crash
    in
    let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
    let rt =
      Runtime.create ~config net
        [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
    in
    Runtime.step rt;
    let poisoned = packet_in_event ~dport:6666 1 2 in
    for _ = 1 to 10 do
      Runtime.dispatch_event rt poisoned
    done;
    Runtime.metrics rt
  in
  let without = run_with None in
  let with_q = run_with (Some (Legosdn.Quarantine.create ~threshold:2 ())) in
  row "  %-26s| %-22s| %s\n" "configuration" "crash/recover cycles"
    "deliveries suppressed";
  row "  %s\n" (String.make 70 '-');
  row "  %-26s| %-22d| %d\n" "no quarantine" (Metrics.crashes without)
    (Metrics.suppressed without);
  row "  %-26s| %-22d| %d\n" "quarantine (threshold 2)" (Metrics.crashes with_q)
    (Metrics.suppressed with_q);
  row "\n  Ten deliveries of the same poisoned event: without quarantine\n";
  row "  every one costs a full crash+rollback+restore cycle; with it the\n";
  row "  signature is blacklisted after two failures.\n"

let atomic_exp () =
  section "E17" "atomic network updates (§3.4, after Katta et al.)";
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  let engine = Legosdn.Netlog.engine (Legosdn.Netlog.create net) in
  let mac h = Openflow.Types.mac_of_host h in
  let good =
    [
      (1, Openflow.Message.flow_add (Openflow.Ofp_match.make ~dl_dst:(mac 2) ())
            [ Openflow.Action.Output 1 ]);
      (2, Openflow.Message.flow_add (Openflow.Ofp_match.make ~dl_dst:(mac 2) ())
            [ Openflow.Action.Output 100 ]);
    ]
  in
  let bad =
    good
    @ [
        (3, Openflow.Message.flow_add (Openflow.Ofp_match.make ~dl_dst:(mac 1) ())
              [ Openflow.Action.Output 77 ]);
      ]
  in
  let count_rules () =
    List.fold_left
      (fun acc sid -> acc + Flow_table.size (Net.switch net sid).Sw.table)
      0 [ 1; 2; 3 ]
  in
  let o1 = Legosdn.Atomic_update.apply ~net ~engine ~app:"operator" bad in
  row "  3-rule update incl. black-holing rule : %s (rules installed: %d)\n"
    (Legosdn.Atomic_update.describe o1) (count_rules ());
  let o2 = Legosdn.Atomic_update.apply ~net ~engine ~app:"operator" good in
  row "  2-rule clean path update              : %s (rules installed: %d)\n"
    (Legosdn.Atomic_update.describe o2) (count_rules ())

let standby_exp () =
  section "E18" "standby controller fail-over (§5 future work)";
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let sb =
    Legosdn.Standby.create ~sync_interval:0.5 net [ (App_sig.app (module Apps.Learning_switch)) ]
  in
  Legosdn.Standby.step sb;
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.2;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      Legosdn.Standby.step sb)
    [ (1, 2); (2, 1); (1, 3); (3, 1); (2, 3); (3, 2) ];
  let box name sb =
    Option.get (Runtime.sandbox (Legosdn.Standby.runtime sb) name)
  in
  let before = Sandbox.state_size (box "learning_switch" sb) in
  let sb = Legosdn.Standby.fail_primary sb in
  let after = Sandbox.state_size (box "learning_switch" sb) in
  row "  controller process killed; standby took over (failover #%d)\n"
    (Legosdn.Standby.failovers sb);
  row "  learning-switch state: %dB before, %dB after fail-over\n" before after;
  row "  state preserved: %b (apps lose only events since the last sync,\n"
    (before = after);
  row "  vs everything in a monolithic cold restart)\n"

let storm_exp () =
  section "E19" "broadcast storms: NO_FLOOD pruning vs controller shedding";
  let run with_stp =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.ring ~hosts_per_switch:1 4) in
    let apps : App_sig.app list =
      if with_stp then [ (App_sig.app (module Apps.Spanning_tree)); (App_sig.app (module Apps.Hub)) ]
      else [ (App_sig.app (module Apps.Hub)) ]
    in
    let rt = Runtime.create net apps in
    Runtime.step rt;
    for i = 1 to 4 do
      Clock.advance_by clock 0.1;
      Net.inject net i (Openflow.Packet.tcp ~src_host:i ~dst_host:(1 + (i mod 4)) ());
      Runtime.step rt
    done;
    (Runtime.events_processed rt, Runtime.events_shed rt,
     (Net.stats net).Net.delivered)
  in
  let p1, s1, d1 = run false in
  let p2, s2, d2 = run true in
  row "  %-26s| %-10s| %-10s| %s
" "configuration" "events" "shed" "delivered";
  row "  %s
" (String.make 60 '-');
  row "  %-26s| %-10d| %-10d| %d
" "hub alone on a ring" p1 s1 d1;
  row "  %-26s| %-10d| %-10d| %d
" "hub + spanning_tree" p2 s2 d2;
  row "
  The flooding hub on a cyclic topology multiplies packet-ins until
";
  row "  the controller sheds load; the spanning-tree app prunes the loop
";
  row "  with OFPPC_NO_FLOOD port-mods and the storm never forms.
"

let channel_exp () =
  section "E20" "lossy southbound: reliable delivery and switch resync";
  let module Reliable = Legosdn.Reliable in
  let module Netlog = Legosdn.Netlog in
  let switches = [ 1; 2; 3 ] in
  let n_txns = 30 in
  (* Permanent rules (no timeouts) so divergence measures delivery, not
     expiry; one unique pattern per transaction and switch. *)
  let pattern_of k = Openflow.Ofp_match.make ~tp_src:(1000 + k) () in
  let run ~loss ~enabled =
    let clock = Clock.create () in
    let net =
      Net.create ~channel:(Channel.lossy loss) ~channel_seed:42 clock
        (Topo_gen.linear ~hosts_per_switch:1 3)
    in
    ignore (Net.poll net);
    let rel =
      Reliable.create
        ~config:{ Reliable.default_config with Reliable.enabled }
        net
    in
    let nl = Netlog.create ~transport:(Reliable.send rel) net in
    for k = 1 to n_txns do
      let txn = Netlog.begin_txn nl ~app:"operator" in
      List.iter
        (fun sid ->
          ignore
            (Netlog.apply nl txn
               (Command.Flow
                  ( sid,
                    Openflow.Message.flow_add ~priority:50 (pattern_of k)
                      [ Openflow.Action.Output 1 ] ))))
        switches;
      if k mod 2 = 0 then Netlog.commit nl txn else Netlog.abort nl txn;
      Clock.advance_by clock 0.05;
      Reliable.tick rel
    done;
    (* Drain: let retransmission and backoff run to completion. *)
    let budget = ref 2000 in
    while Reliable.pending_count rel > 0 && !budget > 0 do
      decr budget;
      Clock.advance_by clock 0.05;
      Reliable.tick rel;
      List.iter (Reliable.observe rel) (Net.poll net)
    done;
    (* A transaction is in a half state when the data plane holds some but
       not all of what its outcome implies: a committed txn missing rules,
       or an aborted txn leaving any behind. *)
    let installed_on k =
      List.length
        (List.filter
           (fun sid ->
             Flow_table.find_exact (Net.switch net sid).Sw.table (pattern_of k)
               ~priority:50
             <> None)
           switches)
    in
    let half_state = ref 0 in
    for k = 1 to n_txns do
      let n = installed_on k in
      let committed = k mod 2 = 0 in
      if (committed && n < List.length switches) || ((not committed) && n > 0)
      then incr half_state
    done;
    ( !half_state,
      Reliable.divergence rel,
      Reliable.retransmits rel,
      Reliable.acks rel,
      Net.dups_suppressed net,
      (Net.channel_totals net).Channel.lost )
  in
  row "  %-8s| %-9s| %-16s| %-11s| %-12s| %-6s| %-6s| %s\n" "loss" "reliable"
    "half-state txns" "divergence" "retransmits" "acks" "dups" "lost";
  row "  %s\n" (String.make 85 '-');
  List.iter
    (fun loss ->
      List.iter
        (fun enabled ->
          let half, div, ret, acks, dups, lost = run ~loss ~enabled in
          row "  %-8.2f| %-9b| %-16d| %-11d| %-12d| %-6d| %-6d| %d\n" loss
            enabled half div ret acks dups lost)
        [ false; true ])
    [ 0.01; 0.05; 0.10; 0.20 ];
  row "\n  %d transactions of 3 rules each (half committed, half aborted)\n"
    n_txns;
  row "  over a seeded lossy channel. Without the reliability layer, lost\n";
  row "  flow-mods leave committed txns partially installed and lost undos\n";
  row "  leave aborted txns partially rolled back; with it, barrier-acked\n";
  row "  retransmission drives both half-state counts and divergence to 0.\n";
  (* Resynchronization: a mid-path switch reboots after traffic pinned
     flows; only shadow-table replay can repair the path without fresh
     packets. *)
  let reboot ~enabled =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
    let config =
      {
        Runtime.default_config with
        Runtime.reliable = { Legosdn.Reliable.default_config with enabled };
      }
    in
    let rt = Runtime.create ~config net [ (App_sig.app (module Apps.Learning_switch)) ] in
    Runtime.step rt;
    List.iter
      (fun (src, dst) ->
        Clock.advance_by clock 0.05;
        Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
        Runtime.step rt)
      [ (1, 3); (3, 1); (1, 3); (3, 1) ];
    Net.apply_fault net (Net.Switch_down 2);
    Runtime.step rt;
    Net.apply_fault net (Net.Switch_up 2);
    let blackholed = not (Net.reachable net 1 3) in
    Runtime.step rt;
    let m = Runtime.metrics rt in
    ( blackholed,
      Net.reachable net 1 3,
      Metrics.resyncs m,
      Metrics.resynced_rules m )
  in
  row "\n  mid-path switch reboot (hosts 1..3, switch 2 restarts empty):\n";
  row "  %-9s| %-18s| %-18s| %-8s| %s\n" "reliable" "blackhole on boot"
    "path after resync" "resyncs" "rules replayed";
  row "  %s\n" (String.make 70 '-');
  List.iter
    (fun enabled ->
      let blackholed, repaired, resyncs, rules = reboot ~enabled in
      row "  %-9b| %-18b| %-18b| %-8d| %d\n" enabled blackholed repaired
        resyncs rules)
    [ false; true ]

(* ------------------------------------------------------------------ *)

let availability_dist () =
  section "E7b" "availability distribution over randomized workloads";
  let duration = 20. in
  let run_arch seed kind =
    let apps () : App_sig.app list =
      [
        Apps.Faulty.wrap ~bug:poisoned_bug (App_sig.app (module Apps.Learning_switch));
        (App_sig.app (module Apps.Firewall));
      ]
    in
    let traffic =
      List.stable_sort
        (fun a b -> compare a.Traffic.at b.Traffic.at)
        (Traffic.schedule
           (Traffic.uniform_pairs ~seed ~hosts:[ 1; 2; 3 ] ~flows:40 ~duration ())
        @ List.init 6 (fun i ->
              {
                Traffic.at = 1.0 +. (3.0 *. float i);
                src = 1;
                packet =
                  Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ~dport:6666 ();
              }))
    in
    let scenario =
      Scenario.make
        ~make_topology:(fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
        ~duration ~traffic ~tick_interval:1. ~restart_delay:10. ()
    in
    match kind with
    | `Mono ->
        Scenario.run scenario ~make_driver:(fun net ->
            Scenario.monolithic_driver (Monolithic.create net (apps ())))
    | `Lego ->
        Scenario.run scenario ~make_driver:(fun net ->
            Scenario.legosdn_driver
              (Runtime.create
                 ~config:(config_with (Recovery_policy.uniform Recovery_policy.Absolute))
                 net (apps ())))
  in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let collect kind field =
    List.map (fun seed -> field (run_arch seed kind)) seeds
  in
  let show label samples =
    match Workload.Stats.summarize samples with
    | Some s ->
        row "  %-34s %s\n" label
          (Format.asprintf "%a" Workload.Stats.pp_summary s)
    | None -> ()
  in
  show "monolithic ctrl availability"
    (collect `Mono (fun r -> r.Scenario.controller_availability));
  show "legosdn ctrl availability"
    (collect `Lego (fun r -> r.Scenario.controller_availability));
  show "monolithic mean connectivity"
    (collect `Mono (fun r -> r.Scenario.mean_connectivity));
  show "legosdn mean connectivity"
    (collect `Lego (fun r -> r.Scenario.mean_connectivity))

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig1", fig1);
    ("latency", latency_exp);
    ("ckpt-k", ckpt_k);
    ("recovery", recovery);
    ("availability", availability);
    ("availability-dist", availability_dist);
    ("netlog", netlog_exp);
    ("ablation-buffer", ablation_buffer);
    ("bugstats", bugstats);
    ("nversion", nversion_exp);
    ("clone", clone_exp);
    ("sts", sts_exp);
    ("upgrade", upgrade_exp);
    ("limits", limits_exp);
    ("quarantine", quarantine_exp);
    ("atomic", atomic_exp);
    ("standby", standby_exp);
    ("storm", storm_exp);
    ("channel", channel_exp);
  ]

open Cmdliner

let exp_arg =
  let doc =
    "Experiment(s) to run: 'all' or any of "
    ^ String.concat ", " (List.map fst experiments)
    ^ ". Repeatable."
  in
  Arg.(value & opt_all string [ "all" ] & info [ "exp"; "e" ] ~docv:"EXP" ~doc)

let run selected =
  let to_run =
    if List.mem "all" selected then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf "unknown experiment %S (try --help)\n" name;
              exit 2)
        selected
  in
  List.iter (fun (_, f) -> f ()) to_run

let cmd =
  let doc = "Regenerate the LegoSDN paper's tables, figures and claims" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ exp_arg)

let () = exit (Cmd.eval cmd)
