lib/core/policy.ml: Controller Format List Option
