(** Application checkpoint store: the CRIU analogue.

    The proxy checkpoints an application before dispatching events to it.
    Checkpointing every event is the paper's §4.1 baseline; §5 proposes
    checkpointing every k events and replaying the journal on recovery —
    both supported here via [every].

    Beyond the full-blob baseline, {!create_delta} switches a store to
    content-chunked delta snapshots: the snapshot bytes are split into
    fixed-size chunks, and a checkpoint only stores chunks whose content
    changed since the previous one (see {!Chunk_store}). An adaptive
    cadence can replace the fixed every-k rule: a checkpoint is taken when
    the estimated journal-replay cost exceeds the estimated cost of writing
    one. Journal accounting is O(1) either way — [due] never scans. *)

(** Content-addressed chunk storage: the backing store for delta
    checkpoints, shared with the standby's shipped-state store.

    Chunks are refcounted: storing a snapshot takes a reference on every
    chunk it uses, releasing a manifest drops them, and a chunk with no
    remaining references is evicted. Identical chunks are stored once
    (verified by byte comparison, so digest collisions cannot corrupt a
    snapshot). *)
module Chunk_store : sig
  type t

  type manifest
  (** A stored snapshot: an ordered list of chunk references plus the
      original length. Holds one reference on each of its chunks until
      {!release}d. *)

  val create : ?chunk_size:int -> unit -> t
  (** [chunk_size] defaults to 64 bytes. Raises [Invalid_argument] if
      [chunk_size < 1]. *)

  val chunk_size : t -> int

  (** Accounting for one {!store}. [written_bytes] is the cost model for a
      delta write: bytes of chunks not already present, plus the manifest
      overhead (16 bytes + 10 per chunk reference). *)
  type write = {
    hits : int;  (** Chunks already present — deduplicated. *)
    misses : int;  (** Chunks newly stored. *)
    deduped_bytes : int;  (** Bytes avoided thanks to chunk reuse. *)
    written_bytes : int;  (** New chunk bytes + manifest overhead. *)
  }

  val store : t -> bytes -> manifest * write

  val release : t -> manifest -> unit
  (** Drop the manifest's chunk references; unreferenced chunks are
      evicted. The manifest must not be materialized afterwards. *)

  val materialize : t -> manifest -> bytes
  (** Reassemble the exact original bytes. *)

  val manifest_bytes : manifest -> int
  (** Logical (un-chunked) length of the stored snapshot. *)

  (** {2 Lifetime statistics} *)

  val hits : t -> int
  val misses : t -> int
  val bytes_deduped : t -> int
  val bytes_written : t -> int
  (** Cumulative {!write}[.written_bytes] across every store. *)

  val chunk_count : t -> int
  val stored_bytes : t -> int
  (** Bytes of chunk data currently resident. *)

  val evicted_chunks : t -> int
end

(** When is the next checkpoint due? *)
type cadence =
  | Every of int
      (** Fixed k: due once k events are journaled (k = 1 reproduces
          checkpoint-before-every-event). *)
  | Adaptive of {
      replay_cost_per_event : int;
          (** Estimated cost (in write-byte units) of replaying one
              journaled event during restore. *)
      min_events : int;  (** Never checkpoint more often than this. *)
      max_events : int;
          (** Hard journal bound: restore replays at most this many
              events, whatever the cost estimate says. *)
    }
      (** Due when [journal × replay_cost_per_event] exceeds the estimated
          write cost (an EWMA of recent checkpoint writes — cheap delta
          writes pull checkpoints closer, expensive full writes push them
          apart), clamped to \[min_events, max_events\]. *)

(** What just happened, for metrics/tracing observers. *)
type notification =
  | Took of {
      delta : bool;
      logical : int;  (** Snapshot size before chunking. *)
      written : int;  (** Bytes actually written (= logical when full). *)
      chunk_hits : int;
      chunk_misses : int;
      deduped : int;
    }
  | Materialized of { bytes : int; journal : int }
      (** A restore point was produced: snapshot size and the number of
          journal events the caller will replay. *)

type t

val create : every:int -> t
(** Full-blob storage with fixed cadence [every] = k. Raises
    [Invalid_argument] if [k < 1]. *)

val create_full : ?observer:(notification -> unit) -> every:int -> unit -> t
(** {!create} plus a notification observer. *)

val create_delta :
  ?chunk_size:int ->
  ?observer:(notification -> unit) ->
  cadence:cadence ->
  unit ->
  t
(** Content-chunked storage with the given cadence. Raises
    [Invalid_argument] on a non-positive cadence parameter or
    [min_events > max_events]. *)

val every : t -> int
(** The fixed k for [Every k]; the [max_events] journal bound for
    [Adaptive]. *)

val cadence : t -> cadence
val is_delta : t -> bool

val due : t -> bool
(** Is a snapshot due before the next event? O(1) — always true before
    the first snapshot. *)

val take : t -> Controller.App_sig.instance -> unit
(** Snapshot the instance's state now and clear the replay journal. *)

val record_applied : t -> Controller.Event.t -> unit
(** Note that the application successfully processed this event after the
    last snapshot; it becomes part of the replay journal. *)

val restore_point : t -> (bytes * Controller.Event.t list) option
(** The latest snapshot (materialized from chunks when delta) and the
    journal of events applied since (oldest first); [None] before any
    snapshot was taken. *)

val journal_length : t -> int
(** O(1). *)

val snapshots_taken : t -> int

val bytes_written : t -> int
(** Cumulative bytes written — the checkpoint overhead metric. Full blobs
    count their whole length; delta checkpoints count new chunk bytes plus
    manifest overhead. *)

val last_snapshot_bytes : t -> int
(** Logical size of the latest snapshot. *)

val last_write_bytes : t -> int
(** Bytes the latest {!take} actually wrote. *)

(** {2 Chunk-store statistics} (all 0 for full-blob stores) *)

val chunk_hits : t -> int
val chunk_misses : t -> int
val chunk_bytes_deduped : t -> int
