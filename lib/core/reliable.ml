open Openflow
module Net = Netsim.Net
module Clock = Netsim.Clock
module Flow_table = Netsim.Flow_table
module Flow_entry = Netsim.Flow_entry

type config = {
  enabled : bool;
  base_timeout : float;
  max_retries : int;
}

let default_config = { enabled = true; base_timeout = 0.05; max_retries = 8 }

(* The retransmission backoff schedule: how long a message waits after its
   [attempts]-th transmission before the next one. Attempt 0 is the
   original send, so the schedule is base, 2*base, 4*base, ... *)
let backoff_delay cfg attempts = cfg.base_timeout *. (2. ** float attempts)

type health = Healthy | Degraded

type pending = {
  p_sid : Types.switch_id;
  p_msg : Message.t;  (* original xid preserved: retransmits dedup *)
  mutable p_sent : bool;
      (* Per-switch FIFO: only the oldest pending message per switch is on
         the wire. Later ones are held back until it is acknowledged —
         otherwise a retransmission could land after a logically later
         message (e.g. an Add resurrected after its rollback Delete). *)
  mutable p_barrier_xid : Types.xid;
  mutable p_attempts : int;
  mutable p_next_at : float;
}

(* Barrier xids live in their own range so they can never collide with
   Netlog's transaction xids (a counter from 1). *)
let barrier_xid_base = 1_000_000_000

(* Messages whose per-message barrier chase was deferred to [end_batch]:
   one barrier per touched switch closes them all. Newest first. *)
type batch = { mutable deferred : (Types.switch_id * Message.t) list }

type t = {
  net : Net.t;
  from : int option;  (* controller identity for master/slave role checks *)
  cfg : config;
  metrics : Metrics.t option;
  notify : Obs.Hub.delivery -> unit;
  shadows : (Types.switch_id, Flow_table.t) Hashtbl.t;
  states : (Types.switch_id, health) Hashtbl.t;
  probe_at : (Types.switch_id, float) Hashtbl.t;
      (* next half-open probe per degraded switch *)
  mutable queue : pending list;  (* unordered; scanned on tick *)
  mutable batch : batch option;
  mutable next_barrier_xid : Types.xid;
  mutable n_retransmits : int;
  mutable n_acks : int;
  mutable n_resyncs : int;
  mutable n_resynced_rules : int;
  mutable n_degraded : int;
}

let create ?(config = default_config) ?controller_id ?metrics
    ?(notify = fun _ -> ()) net =
  {
    net;
    from = controller_id;
    cfg = config;
    metrics;
    notify;
    shadows = Hashtbl.create 16;
    states = Hashtbl.create 16;
    probe_at = Hashtbl.create 8;
    queue = [];
    batch = None;
    next_barrier_xid = barrier_xid_base;
    n_retransmits = 0;
    n_acks = 0;
    n_resyncs = 0;
    n_resynced_rules = 0;
    n_degraded = 0;
  }

let config t = t.cfg
let now t = Clock.now (Net.clock t.net)

let health t sid =
  match Hashtbl.find_opt t.states sid with Some h -> h | None -> Healthy

let is_degraded t sid = health t sid = Degraded
let pending_count t = List.length t.queue
let shadow t sid = Hashtbl.find_opt t.shadows sid
let retransmits t = t.n_retransmits
let acks t = t.n_acks
let resyncs t = t.n_resyncs
let resynced_rules t = t.n_resynced_rules
let degraded_count t = t.n_degraded

let with_metrics t f = match t.metrics with Some m -> f m | None -> ()

let fresh_barrier_xid t =
  let x = t.next_barrier_xid in
  t.next_barrier_xid <- t.next_barrier_xid + 1;
  x

let shadow_of t sid =
  match Hashtbl.find_opt t.shadows sid with
  | Some table -> table
  | None ->
      let table = Flow_table.create () in
      Hashtbl.replace t.shadows sid table;
      table

(* Mirror of Sw.apply_flow_mod on the intent table: what the switch's
   table will hold once this message is (eventually) delivered. *)
let record_intent t sid (msg : Message.t) =
  match msg.payload with
  | Message.Flow_mod fm -> (
      let table = shadow_of t sid in
      let entry () = Flow_entry.of_flow_mod ~now:(now t) fm in
      match fm.command with
      | Message.Add -> Flow_table.add table (entry ())
      | Message.Modify | Message.Modify_strict ->
          let strict = fm.command = Message.Modify_strict in
          let hit =
            Flow_table.modify table ~strict fm.pattern ~priority:fm.priority
              fm.actions
          in
          if not hit then Flow_table.add table (entry ())
      | Message.Delete | Message.Delete_strict ->
          let strict = fm.command = Message.Delete_strict in
          ignore
            (Flow_table.delete table ~strict ?out_port:fm.out_port fm.pattern
               ~priority:fm.priority))
  | _ -> ()

let acked_synchronously xid replies =
  List.exists
    (fun (r : Message.t) -> r.payload = Message.Barrier_reply && r.xid = xid)
    replies

(* A barrier reply alone only proves the channel is alive: the flow-mod
   ahead of it may have been dropped while the barrier got through. The
   reply's real meaning — "everything delivered before this barrier has
   been processed" — lets the controller check the switch's per-xid
   receive record and acknowledge selectively. *)
let delivered t sid (msg : Message.t) =
  (not (Message.is_state_altering msg.payload))
  || (try Netsim.Sw.has_seen_xid (Net.switch t.net sid) msg.xid
      with Not_found -> false)

(* Chase one transmitted state-altering message with a barrier. Returns
   [true] when the barrier reply came back synchronously. *)
let barrier_probe t sid =
  let xid = fresh_barrier_xid t in
  let replies = Net.send ?from:t.from t.net sid (Message.message ~xid Message.Barrier_request) in
  (xid, acked_synchronously xid replies)

(* Forward declaration closing the ack -> transmit-next-head cycle:
   bound to the real drain step after [retransmit] is defined. *)
let ack_drain : (t -> Types.switch_id -> unit) ref = ref (fun _ _ -> ())

let ack t p =
  t.queue <- List.filter (fun q -> q != p) t.queue;
  t.n_acks <- t.n_acks + 1;
  with_metrics t Metrics.incr_barrier_acks;
  t.notify (Obs.Hub.Acked { sw = p.p_sid; xid = p.p_msg.Message.xid });
  (* Ack-clocked drain: the ack that frees this switch's head-of-line
     slot immediately transmits its next held-back message, so a burst
     (a resync, an intent install) drains at round-trip rate rather than
     one message per runtime tick. *)
  !ack_drain t p.p_sid

let has_pending t sid = List.exists (fun p -> p.p_sid = sid) t.queue

(* The queue is kept in FIFO order; transmitted entries wait
   [base_timeout] before their first retransmission, held-back entries
   become eligible the moment they reach the head of their switch's
   line. *)
let enqueue t sid msg ~sent barrier_xid =
  t.queue <-
    t.queue
    @ [
        {
          p_sid = sid;
          p_msg = msg;
          p_sent = sent;
          p_barrier_xid = barrier_xid;
          p_attempts = 0;
          p_next_at = (now t +. if sent then backoff_delay t.cfg 0 else 0.);
        };
      ]

(* May the per-message barrier chase for this switch be deferred to the
   end of the current batch? Only when the channel consumes no random
   draws and cannot reorder, drop or delay — i.e. the verdict for every
   message on it is "delivered now, deterministically". On such a channel
   the skipped barriers are invisible: no RNG state advances, no pending
   entry is created, and the deferred flow-mods are already on the switch
   (verified per message via [delivered]). Any fault configuration at all
   sends the message down the exact sequential protocol instead, byte for
   byte, RNG draw for RNG draw. *)
let channel_safe t sid =
  match Net.channel t.net sid with
  | exception Not_found -> false
  | ch ->
      (not (Netsim.Channel.partitioned ch))
      &&
      let c = Netsim.Channel.config ch in
      c.Netsim.Channel.loss = 0.
      && c.Netsim.Channel.reply_loss = 0.
      && c.Netsim.Channel.duplicate = 0.
      && c.Netsim.Channel.delay = Netsim.Channel.No_delay

let send t sid (msg : Message.t) =
  record_intent t sid msg;
  if is_degraded t sid then []
  else if t.cfg.enabled && Message.is_state_altering msg.payload then
    if has_pending t sid then begin
      (* Head-of-line blocking on purpose: transmitting now could land
         before the unacknowledged head's retransmission and reorder
         state changes. *)
      enqueue t sid msg ~sent:false 0;
      t.notify (Obs.Hub.Queued { sw = sid; xid = msg.Message.xid });
      []
    end
    else begin
      let replies = Net.send ?from:t.from t.net sid msg in
      t.notify (Obs.Hub.Sent { sw = sid; xid = msg.Message.xid });
      (match t.batch with
      | Some b when channel_safe t sid && delivered t sid msg ->
          (* Coalesce: the message is verified on the switch; one barrier
             at [end_batch] acknowledges it together with every other
             deferred message for this switch. Not enqueued as pending, so
             later sends in the batch keep transmitting immediately —
             exactly as they would after a synchronous ack. *)
          b.deferred <- (sid, msg) :: b.deferred
      | Some _ | None -> (
          let barrier_xid, acked = barrier_probe t sid in
          if acked && delivered t sid msg then begin
            t.n_acks <- t.n_acks + 1;
            with_metrics t Metrics.incr_barrier_acks;
            t.notify (Obs.Hub.Acked { sw = sid; xid = msg.Message.xid })
          end
          else enqueue t sid msg ~sent:true barrier_xid));
      replies
    end
  else Net.send ?from:t.from t.net sid msg

let begin_batch t = if t.batch = None then t.batch <- Some { deferred = [] }

let end_batch t =
  match t.batch with
  | None -> ()
  | Some b ->
      t.batch <- None;
      let deferred = List.rev b.deferred in
      (* One barrier per touched switch, in ascending switch order —
         deterministic regardless of how sends interleaved. *)
      let sids =
        List.sort_uniq compare (List.map (fun (sid, _) -> sid) deferred)
      in
      List.iter
        (fun sid ->
          let msgs =
            List.filter_map
              (fun (s, m) -> if s = sid then Some m else None)
              deferred
          in
          let barrier_xid, acked = barrier_probe t sid in
          List.iter
            (fun (msg : Message.t) ->
              if acked && delivered t sid msg then begin
                t.n_acks <- t.n_acks + 1;
                with_metrics t Metrics.incr_barrier_acks;
                t.notify (Obs.Hub.Acked { sw = sid; xid = msg.Message.xid })
              end
              else
                (* Defensive: the channel was declared safe when the
                   message went out, so this means the switch itself went
                   away mid-batch. Hand the message to the ordinary
                   retransmission machinery. *)
                enqueue t sid msg ~sent:true barrier_xid)
            msgs)
        sids

let probe_interval t = t.cfg.base_timeout *. 8.

let degrade t sid =
  if not (is_degraded t sid) then begin
    Hashtbl.replace t.states sid Degraded;
    Hashtbl.replace t.probe_at sid (now t +. probe_interval t);
    t.n_degraded <- t.n_degraded + 1;
    with_metrics t Metrics.incr_unreachable;
    t.notify (Obs.Hub.Degraded { sw = sid });
    (* Nothing queued for this switch can succeed any more; the shadow
       table keeps the intent and resync will replay it on reconnect. *)
    t.queue <- List.filter (fun p -> p.p_sid <> sid) t.queue
  end

(* (Re)transmit the head-of-line message for its switch. The first
   transmission of a held-back message is free; retransmissions burn the
   retry budget. *)
let retransmit t p =
  if p.p_sent && p.p_attempts >= t.cfg.max_retries then degrade t p.p_sid
  else begin
    if p.p_sent then begin
      p.p_attempts <- p.p_attempts + 1;
      t.n_retransmits <- t.n_retransmits + 1;
      with_metrics t Metrics.incr_retransmits;
      t.notify
        (Obs.Hub.Retransmitted
           {
             sw = p.p_sid;
             xid = p.p_msg.Message.xid;
             attempt = p.p_attempts;
           })
    end
    else begin
      p.p_sent <- true;
      t.notify (Obs.Hub.Sent { sw = p.p_sid; xid = p.p_msg.Message.xid })
    end;
    (* Same xid as the original: if the first copy did arrive, the switch
       suppresses the duplicate and only the barrier matters. *)
    ignore (Net.send ?from:t.from t.net p.p_sid p.p_msg);
    let barrier_xid, acked = barrier_probe t p.p_sid in
    if acked && delivered t p.p_sid p.p_msg then ack t p
    else begin
      p.p_barrier_xid <- barrier_xid;
      p.p_next_at <- now t +. backoff_delay t.cfg p.p_attempts
    end
  end

let () =
  ack_drain :=
    fun t sid ->
      if not (is_degraded t sid) then
        match List.find_opt (fun q -> q.p_sid = sid) t.queue with
        | Some head when not head.p_sent -> retransmit t head
        | Some _ | None -> ()

(* A reconnected switch starts from an empty table (reboot semantics).
   Replay the intended rule set so the data plane converges without
   waiting for fresh traffic to re-trigger the applications. *)
let resync t sid =
  t.queue <- List.filter (fun p -> p.p_sid <> sid) t.queue;
  Hashtbl.remove t.states sid;
  Hashtbl.remove t.probe_at sid;
  match Hashtbl.find_opt t.shadows sid with
  | None -> ()
  | Some table ->
      let entries = Flow_table.entries table in
      if entries <> [] then begin
        t.n_resyncs <- t.n_resyncs + 1;
        t.notify (Obs.Hub.Resynced { sw = sid; rules = List.length entries });
        with_metrics t Metrics.incr_resyncs;
        t.n_resynced_rules <- t.n_resynced_rules + List.length entries;
        with_metrics t (fun m ->
            Metrics.incr_resynced_rules m (List.length entries));
        List.iter
          (fun (e : Flow_entry.t) ->
            let fm =
              Message.flow_add ~cookie:e.cookie ~idle_timeout:e.idle_timeout
                ~hard_timeout:e.hard_timeout ~priority:e.priority
                ~notify_when_removed:e.notify_when_removed e.pattern e.actions
            in
            ignore
              (send t sid
                 (Message.message ~xid:(fresh_barrier_xid t)
                    (Message.Flow_mod fm))))
          entries
      end

(* Circuit-breaker half-open state: a degraded switch is probed with a
   bare barrier now and then; the first synchronous reply proves the
   channel works again and triggers a full resync. A probe that reaches
   no live switch just comes back as an error (or nothing) and the
   breaker stays open. *)
let probe_degraded t =
  let due =
    Hashtbl.fold
      (fun sid at acc -> if at <= now t then sid :: acc else acc)
      t.probe_at []
  in
  List.iter
    (fun sid ->
      let _, acked = barrier_probe t sid in
      if acked then resync t sid
      else Hashtbl.replace t.probe_at sid (now t +. probe_interval t))
    (List.sort compare due)

(* The oldest pending entry per switch, in queue order. *)
let heads t =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.p_sid then false
      else begin
        Hashtbl.replace seen p.p_sid ();
        true
      end)
    t.queue

let tick t =
  if t.cfg.enabled then begin
    let due = List.filter (fun p -> p.p_next_at <= now t) (heads t) in
    List.iter (fun p -> if List.memq p t.queue then retransmit t p) due;
    probe_degraded t
  end

let observe t = function
  | Net.From_switch (sid, { Message.payload = Message.Barrier_reply; xid }) ->
      (* A delayed or retransmission-triggered barrier reply. *)
      ignore sid;
      (match List.find_opt (fun p -> p.p_barrier_xid = xid) t.queue with
      | Some p when delivered t p.p_sid p.p_msg -> ack t p
      | Some _ | None -> ())
  | Net.Switch_connected (sid, _) -> if t.cfg.enabled then resync t sid
  | Net.From_switch _ | Net.Switch_disconnected _ | Net.Delivered _ -> ()

(* Shadow tables travel with replica state transfer: a fail-over
   controller that starts from empty shadows would count every rule the
   old leader installed as "extra" divergence and could never resync a
   rebooted switch. Export/import move the full intent, entry by entry. *)
let export_shadows t =
  Hashtbl.fold
    (fun sid table acc -> (sid, Flow_table.entries table) :: acc)
    t.shadows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let import_shadows t shadows =
  Hashtbl.reset t.shadows;
  List.iter
    (fun (sid, entries) ->
      let table = shadow_of t sid in
      List.iter (fun e -> Flow_table.add table e) entries)
    shadows

(* The un-acked queue also travels with replica state transfer. The
   shipper's dispatch of a log entry and the wire delivery of the
   commands it produced are separated by head-of-line blocking and
   retransmission backoff: a command can sit in this queue long after
   its entry is committed, snapshotted, and out of the re-dispatch
   window. A successor that dropped the queue would silently lose that
   command forever. Import re-injects each message un-sent, with its
   original xid: if the old copy did reach the switch, per-xid dedup
   suppresses the replay and only the trailing barrier matters. *)
let export_pending t = List.map (fun p -> (p.p_sid, p.p_msg)) t.queue

let import_pending t pending =
  t.queue <- [];
  List.iter (fun (sid, msg) -> enqueue t sid msg ~sent:false 0) pending

let entry_key (e : Flow_entry.t) = (e.pattern, e.priority, e.actions)

let divergence t =
  Hashtbl.fold
    (fun sid table acc ->
      let intended = List.map entry_key (Flow_table.entries table) in
      let actual =
        try
          List.map entry_key
            (Flow_table.entries (Net.switch t.net sid).Netsim.Sw.table)
        with Not_found -> []
      in
      let missing =
        List.filter (fun k -> not (List.mem k actual)) intended
      in
      let extra =
        List.filter (fun k -> not (List.mem k intended)) actual
      in
      acc + List.length missing + List.length extra)
    t.shadows 0
