type kind =
  | Event_root
  | App_handle
  | Detection
  | Txn_commit
  | Txn_rollback
  | Recovery
  | Delivery
  | Retransmit
  | Resync
  | Inv_cache_hit
  | Inv_cache_miss
  | Ckpt_take
  | Ckpt_restore
  | Election
  | Replicate
  | State_transfer
  | Failover
  | Batch_root
  | Shard_dispatch
  | Vote
  | Outvoted

let all_kinds =
  [
    Event_root;
    App_handle;
    Detection;
    Txn_commit;
    Txn_rollback;
    Recovery;
    Delivery;
    Retransmit;
    Resync;
    Inv_cache_hit;
    Inv_cache_miss;
    Ckpt_take;
    Ckpt_restore;
    Election;
    Replicate;
    State_transfer;
    Failover;
    Batch_root;
    Shard_dispatch;
    Vote;
    Outvoted;
  ]

let kind_name = function
  | Event_root -> "event"
  | App_handle -> "app"
  | Detection -> "detect"
  | Txn_commit -> "commit"
  | Txn_rollback -> "rollback"
  | Recovery -> "recovery"
  | Delivery -> "delivery"
  | Retransmit -> "retransmit"
  | Resync -> "resync"
  | Inv_cache_hit -> "inv-hit"
  | Inv_cache_miss -> "inv-miss"
  | Ckpt_take -> "checkpoint"
  | Ckpt_restore -> "restore"
  | Election -> "election"
  | Replicate -> "replicate"
  | State_transfer -> "xfer"
  | Failover -> "failover"
  | Batch_root -> "batch"
  | Shard_dispatch -> "shard"
  | Vote -> "vote"
  | Outvoted -> "outvoted"

let kind_of_name name =
  List.find_opt (fun k -> kind_name k = name) all_kinds

type t = {
  id : int;
  parent : int;
  kind : kind;
  vt : float;
  vt_end : float;
  t0 : float;
  t1 : float;
  attrs : (string * string) list;
}

let duration s = s.t1 -. s.t0
let is_instant s = s.t1 = s.t0

let pp fmt s =
  Format.fprintf fmt "#%d%s %s vt=%g dur=%g%a" s.id
    (if s.parent < 0 then "" else Printf.sprintf "<-#%d" s.parent)
    (kind_name s.kind) s.vt (duration s)
    (fun fmt attrs ->
      List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) attrs)
    s.attrs
