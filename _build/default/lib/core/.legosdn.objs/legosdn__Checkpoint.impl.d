lib/core/checkpoint.ml: Bytes Controller List
