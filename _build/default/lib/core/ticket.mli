(** Problem tickets (§3.3 "How to alert operators?").

    Crash-Pad's research agenda is to make the SDN-Apps — not their
    developers — oblivious to failures: every subverted failure produces a
    ticket carrying the offending event, the failure diagnosis and the
    compromise that was applied, so the underlying bug can be triaged. *)

type resolution =
  | Ignored  (** Absolute compromise: the event was dropped. *)
  | Transformed of string  (** Equivalence compromise; the replayed form. *)
  | Disabled  (** No compromise: the application was taken down. *)
  | Blocked  (** Byzantine output stopped before commit, txn rolled back. *)

type t = {
  id : int;
  opened_at : float;  (** Virtual time. *)
  app : string;
  event : string;  (** Rendered offending event. *)
  event_kind : Controller.Event.kind option;
  diagnosis : string;  (** Detector output: exception text, violations… *)
  resolution : resolution;
  rolled_back_ops : int;  (** Transaction operations undone. *)
}

type store

val store : unit -> store
val file : store -> now:float -> app:string -> ?event:Controller.Event.t
  -> diagnosis:string -> resolution:resolution -> rolled_back_ops:int -> unit
  -> t

val all : store -> t list
(** Oldest first. *)

val count : store -> int
val by_app : store -> string -> t list

val resolution_name : resolution -> string
val pp : Format.formatter -> t -> unit
