lib/apps/faulty.mli: Bug_model Controller
