test/t_packet.ml: Alcotest Bytes Openflow Packet QCheck2 QCheck_alcotest T_util Types
