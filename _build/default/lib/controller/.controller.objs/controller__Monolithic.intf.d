lib/controller/monolithic.mli: App_sig Event Netsim Services
