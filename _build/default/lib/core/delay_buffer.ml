open Openflow
module Net = Netsim.Net
module Command = Controller.Command

type t = {
  network : Net.t;
  mutable next_xid : int;
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_buffered : int;
  mutable n_discarded : int;
}

let create network =
  {
    network;
    next_xid = 1;
    n_committed = 0;
    n_aborted = 0;
    n_buffered = 0;
    n_discarded = 0;
  }

let committed t = t.n_committed
let aborted t = t.n_aborted
let ops_buffered t = t.n_buffered
let ops_discarded t = t.n_discarded

let fresh_xid t =
  let x = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  x

let send t sid payload =
  Net.send t.network sid (Message.message ~xid:(fresh_xid t) payload)

let engine t : Txn_engine.t =
  {
    engine_name = "delay-buffer";
    begin_txn =
      (fun ~app:_ ->
        let buffered = ref [] (* newest first *) in
        let closed = ref false in
        let applied = ref [] in
        {
          Txn_engine.apply =
            (fun cmd ->
              if !closed then
                invalid_arg "Delay_buffer.apply: transaction already closed";
              applied := cmd :: !applied;
              match cmd with
              | Command.Flow _ | Command.Packet _ | Command.Port _ ->
                  t.n_buffered <- t.n_buffered + 1;
                  buffered := cmd :: !buffered;
                  []
              | Command.Stats (sid, req) ->
                  (* Reads bypass the buffer — and therefore do not see the
                     transaction's own writes; the prototype's known flaw. *)
                  send t sid (Message.Stats_request req)
              | Command.Log _ -> []);
          commit =
            (fun () ->
              if not !closed then begin
                closed := true;
                t.n_committed <- t.n_committed + 1;
                List.iter
                  (fun cmd ->
                    match cmd with
                    | Command.Flow (sid, fm) ->
                        ignore (send t sid (Message.Flow_mod fm))
                    | Command.Packet (sid, po) ->
                        ignore (send t sid (Message.Packet_out po))
                    | Command.Port (sid, pm) ->
                        ignore (send t sid (Message.Port_mod pm))
                    | Command.Stats _ | Command.Log _ -> ())
                  (List.rev !buffered)
              end);
          abort =
            (fun () ->
              if not !closed then begin
                closed := true;
                t.n_aborted <- t.n_aborted + 1;
                t.n_discarded <- t.n_discarded + List.length !buffered;
                buffered := []
              end);
          issued = (fun () -> List.rev !applied);
        });
  }
