test/t_crashpad.ml: Alcotest Apps Clock Controller Flow_table Legosdn List Message Net Netsim Ofp_match Openflow Option QCheck2 QCheck_alcotest Sw T_util Topo_gen
