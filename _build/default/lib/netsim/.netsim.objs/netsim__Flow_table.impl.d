lib/netsim/flow_table.ml: Action Flow_entry Format List Ofp_match Openflow
