type t = {
  min_bound : float;
  factor : float;
  mutable counts : int array;  (* grown on demand *)
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(min_bound = 1e-9) ?(factor = 2.) () =
  if min_bound <= 0. then invalid_arg "Histogram.create: min_bound <= 0";
  if factor <= 1. then invalid_arg "Histogram.create: factor <= 1";
  {
    min_bound;
    factor;
    counts = Array.make 8 0;
    total = 0;
    sum = 0.;
    min_v = nan;
    max_v = nan;
  }

(* The bucket index is found by repeated multiplication — the same
   operation [bound_of] uses — so a sample equal to a bucket's upper bound
   always lands in that bucket, float rounding included. *)
let index_of t x =
  if x <= t.min_bound then 0
  else begin
    let i = ref 0 and b = ref t.min_bound in
    while x > !b do
      incr i;
      b := !b *. t.factor
    done;
    !i
  end

let bound_of t i =
  let b = ref t.min_bound in
  for _ = 1 to i do
    b := !b *. t.factor
  done;
  !b

let ensure t i =
  if i >= Array.length t.counts then begin
    let counts = Array.make (max (i + 1) (2 * Array.length t.counts)) 0 in
    Array.blit t.counts 0 counts 0 (Array.length t.counts);
    t.counts <- counts
  end

let observe t x =
  let i = index_of t x in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. x;
  if Float.is_nan t.min_v || x < t.min_v then t.min_v <- x;
  if Float.is_nan t.max_v || x > t.max_v then t.max_v <- x

let count t = t.total
let sum t = t.sum
let min_seen t = t.min_v
let max_seen t = t.max_v

let quantile t q =
  if t.total = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float t.total))) in
    let rank = min rank t.total in
    let acc = ref 0 and i = ref 0 in
    while !acc < rank do
      acc := !acc + t.counts.(!i);
      if !acc < rank then incr i
    done;
    bound_of t !i
  end

let buckets t =
  let out = ref [] in
  Array.iteri
    (fun i c -> if c > 0 then out := (bound_of t i, c) :: !out)
    t.counts;
  List.rev !out

let merge_into ~dst t =
  if dst.min_bound <> t.min_bound || dst.factor <> t.factor then
    invalid_arg "Histogram.merge_into: bucket layouts differ";
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        ensure dst i;
        dst.counts.(i) <- dst.counts.(i) + c
      end)
    t.counts;
  dst.total <- dst.total + t.total;
  dst.sum <- dst.sum +. t.sum;
  if not (Float.is_nan t.min_v) then
    if Float.is_nan dst.min_v || t.min_v < dst.min_v then dst.min_v <- t.min_v;
  if not (Float.is_nan t.max_v) then
    if Float.is_nan dst.max_v || t.max_v > dst.max_v then dst.max_v <- t.max_v

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.;
  t.min_v <- nan;
  t.max_v <- nan

let pp fmt t =
  if t.total = 0 then Format.fprintf fmt "empty"
  else
    Format.fprintf fmt "n=%d p50<=%.3g p95<=%.3g p99<=%.3g max=%.3g" t.total
      (quantile t 0.5) (quantile t 0.95) (quantile t 0.99) t.max_v
