lib/core/resources.ml: Printf
