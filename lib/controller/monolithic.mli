(** The fate-sharing baseline: a FloodLight-style monolithic controller.

    Applications run in the controller's own "process"; any exception an
    application raises takes the whole controller down — every other app
    included — and a restart loses all application state. This is the
    architecture LegoSDN exists to replace (paper Figure 1, left side). *)

type crash_info = {
  culprit : string;  (** Name of the app whose failure killed the stack. *)
  event : Event.t option;  (** The event being processed, if any. *)
  detail : string;  (** Exception text or "hang". *)
  at : float;  (** Virtual time of death. *)
}

type status = Running | Crashed of crash_info

type t

val create : Netsim.Net.t -> App_sig.app list -> t
(** Build the controller over a live network with the given applications
    (dispatch follows registration order). *)

val status : t -> status
val apps : t -> App_sig.instance list
val services : t -> Services.t
val net : t -> Netsim.Net.t

val step : t -> unit
(** Drain southbound notifications and dispatch the resulting events to
    subscribed applications, executing their commands as they return. An
    application failure transitions the controller to [Crashed]; a crashed
    controller ignores [step] entirely (switches keep forwarding with the
    rules they have, but no new events are processed). *)

val dispatch_event : t -> Event.t -> unit
(** Push one synthetic event through dispatch (used by ticks, tests and
    latency benchmarks). Same crash semantics as {!step}. *)

val tick : t -> unit
(** Deliver a [Tick] carrying the current virtual time. *)

val restart : t -> unit
(** Operator reboot: every application is re-instantiated from [init]
    (state lost — the paper's controller-upgrade pain), services are
    rebuilt, and the controller re-handshakes with every reachable
    switch. *)

val events_processed : t -> int
val commands_executed : t -> int

val events_shed : t -> int
(** Notifications dropped by the broadcast-storm guard: when a step's event
    budget is exhausted (e.g. a flooding loop on a cyclic topology), excess
    switch notifications are shed, as an overloaded controller connection
    would shed them. *)
