module Event = Controller.Event

type resolution =
  | Ignored
  | Transformed of string
  | Disabled
  | Blocked

type t = {
  id : int;
  opened_at : float;
  app : string;
  event : string;
  event_kind : Event.kind option;
  diagnosis : string;
  resolution : resolution;
  rolled_back_ops : int;
}

type store = { mutable tickets : t list; mutable next_id : int }

let store () = { tickets = []; next_id = 1 }

let file st ~now ~app ?event ~diagnosis ~resolution ~rolled_back_ops () =
  let ticket =
    {
      id = st.next_id;
      opened_at = now;
      app;
      event =
        (match event with
        | Some ev -> Format.asprintf "%a" Event.pp ev
        | None -> "<none>");
      event_kind = Option.map Event.kind_of event;
      diagnosis;
      resolution;
      rolled_back_ops;
    }
  in
  st.next_id <- st.next_id + 1;
  st.tickets <- ticket :: st.tickets;
  ticket

let all st = List.rev st.tickets
let count st = List.length st.tickets
let by_app st app = List.filter (fun t -> t.app = app) (all st)

let resolution_name = function
  | Ignored -> "ignored"
  | Transformed alt -> Printf.sprintf "transformed -> %s" alt
  | Disabled -> "app disabled"
  | Blocked -> "blocked pre-commit"

let pp fmt t =
  Format.fprintf fmt
    "@[<v2>ticket #%d (t=%.3f) app=%s@,event: %s@,diagnosis: %s@,resolution: %s (%d ops rolled back)@]"
    t.id t.opened_at t.app t.event t.diagnosis
    (resolution_name t.resolution)
    t.rolled_back_ops
