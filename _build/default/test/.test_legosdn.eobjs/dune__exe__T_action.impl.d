test/t_action.ml: Action Alcotest Buf List Openflow Packet QCheck2 QCheck_alcotest T_util
