test/t_trace_io.ml: Alcotest Bytes Controller Filename Fun Legosdn List Message Openflow Sys T_util Workload
