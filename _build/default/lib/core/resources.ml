type limits = {
  max_state_bytes : int option;
  max_commands_per_event : int option;
}

type breach =
  | State_too_large of { used : int; limit : int }
  | Too_many_commands of { emitted : int; limit : int }

let unlimited = { max_state_bytes = None; max_commands_per_event = None }

let check limits ~state_bytes ~commands_emitted =
  let state =
    match limits.max_state_bytes with
    | Some limit when state_bytes > limit ->
        [ State_too_large { used = state_bytes; limit } ]
    | Some _ | None -> []
  in
  let commands =
    match limits.max_commands_per_event with
    | Some limit when commands_emitted > limit ->
        [ Too_many_commands { emitted = commands_emitted; limit } ]
    | Some _ | None -> []
  in
  state @ commands

let describe = function
  | State_too_large { used; limit } ->
      Printf.sprintf "state %d bytes exceeds limit %d" used limit
  | Too_many_commands { emitted; limit } ->
      Printf.sprintf "%d commands in one event exceeds limit %d" emitted limit
