module App_sig = Controller.App_sig
(* The incremental invariant checker must be observationally equal to the
   full checker — same violations, same order — no matter what happened to
   the network since its caches were last valid. The property below drives
   both through arbitrary flow-mod / fault / clock sequences; the unit
   tests pin the invalidation paths that are easy to get wrong (reboots,
   flow timeouts, partition + resync, hypothetical-overlay pollution). *)

open Openflow
open Netsim
module Checker = Invariants.Checker
module Snapshot = Invariants.Snapshot
module Incremental = Invariants.Incremental
module Runtime = Legosdn.Runtime
module Metrics = Legosdn.Metrics

let mac = Types.mac_of_host

(* Small vocabularies keep collisions (same rule re-added, deletes that
   actually hit, rules shadowing each other) frequent. Port 77 is unwired
   on every generated topology, so black holes appear regularly. *)
let patterns =
  [|
    Ofp_match.any;
    Ofp_match.make ~dl_dst:(mac 1) ();
    Ofp_match.make ~dl_dst:(mac 2) ();
    Ofp_match.make ~dl_dst:(mac 3) ();
    Ofp_match.make ~tp_dst:80 ();
    Ofp_match.make ~dl_dst:(mac 2) ~tp_dst:80 ();
  |]

let action_sets =
  [|
    [ Action.Output 1 ];
    [ Action.Output 2 ];
    [ Action.Output 100 ];
    [ Action.Output 77 ];
    [];
    [ Action.Output Types.port_flood ];
  |]

let priorities = [| 10; Message.default_priority; 65000 |]
let timeouts = [| 0; 1; 3 |]

type op =
  | Flow of int * Message.flow_mod
  | Fault of Net.fault
  | Advance of float

let gen_install =
  QCheck2.Gen.(
    map
      (fun (sid, (p, a), (prio, (idle, hard))) ->
        Flow
          ( sid,
            Message.flow_add
              ~idle_timeout:timeouts.(idle) ~hard_timeout:timeouts.(hard)
              ~priority:priorities.(prio) patterns.(p) action_sets.(a) ))
      (triple (int_range 1 3)
         (pair (int_bound 5) (int_bound 5))
         (pair (int_bound 2) (pair (int_bound 2) (int_bound 2)))))

let gen_delete =
  QCheck2.Gen.(
    map
      (fun (sid, p, strict) ->
        Flow (sid, Message.flow_delete ~strict patterns.(p)))
      (triple (int_range 1 3) (int_bound 5) bool))

let gen_op =
  QCheck2.Gen.(
    frequency
      [
        (6, gen_install);
        (2, gen_delete);
        (1, map (fun s -> Fault (Net.Switch_down s)) (int_range 1 3));
        (1, map (fun s -> Fault (Net.Switch_up s)) (int_range 1 3));
        ( 1,
          map
            (fun (s, p) -> Fault (Net.Port_down (s, p)))
            (pair (int_range 1 3) (oneofl [ 1; 2; 100 ])) );
        ( 1,
          map
            (fun (s, p) -> Fault (Net.Port_up (s, p)))
            (pair (int_range 1 3) (oneofl [ 1; 2; 100 ])) );
        (2, map (fun d -> Advance (float_of_int d *. 0.7)) (int_range 0 5));
      ])

let apply_op net clock = function
  | Flow (sid, fm) ->
      ignore (Net.send net sid (Message.message (Message.Flow_mod fm)))
  | Fault f -> Net.apply_fault net f
  | Advance d -> Clock.advance_by clock d

(* Invariants chosen to exercise every probe consumer: pair traces (loops,
   black holes, reachability, isolation) and rule scans (drop-all). *)
let invs =
  [
    Checker.Loop_freedom;
    Checker.Black_hole_freedom;
    Checker.No_drop_all;
    Checker.Pairwise_reachability [ (1, 3); (3, 1) ];
    Checker.Isolation { group_a = [ 1 ]; group_b = [ 3 ] };
  ]

let make_net ring =
  let clock = Clock.create () in
  let topo =
    if ring then Topo_gen.ring ~hosts_per_switch:1 3
    else Topo_gen.linear ~hosts_per_switch:1 3
  in
  let net = Net.create clock topo in
  ignore (Net.poll net);
  (clock, net)

(* The engine persists across the whole sequence — precisely what Crash-Pad
   does across transactions — while the reference checker re-freezes the
   world at every step. *)
let prop_check_equiv =
  QCheck2.Test.make
    ~name:"incremental check = full check across arbitrary sequences"
    ~count:500
    QCheck2.Gen.(pair bool (list_size (int_range 1 12) gen_op))
    (fun (ring, ops) ->
      let clock, net = make_net ring in
      let eng = Incremental.create net in
      List.for_all
        (fun op ->
          apply_op net clock op;
          Incremental.check ~invariants:invs eng
          = Checker.check ~invariants:invs (Snapshot.of_net net))
        ops)

(* PR 3's equivalence property must survive eviction: with a budget small
   enough to thrash, every evicted line is simply re-traced from current
   state on its next use, so the answers cannot drift. *)
let prop_check_equiv_under_eviction =
  QCheck2.Test.make
    ~name:"incremental check = full check under trace-cache eviction"
    ~count:250
    QCheck2.Gen.(pair bool (list_size (int_range 1 12) gen_op))
    (fun (ring, ops) ->
      let clock, net = make_net ring in
      let observed = ref 0 in
      let observer = function
        | Incremental.Trace_evicted _ -> incr observed
        | _ -> ()
      in
      let eng = Incremental.create ~observer ~trace_cache_budget:2048 net in
      List.for_all
        (fun op ->
          apply_op net clock op;
          Incremental.check ~invariants:invs eng
          = Checker.check ~invariants:invs (Snapshot.of_net net))
        ops
      && (Incremental.stats eng).Incremental.evictions = !observed)

let gen_mod =
  QCheck2.Gen.(
    map
      (fun (sid, op) ->
        match op with
        | Flow (_, fm) -> (sid, fm)
        | _ -> assert false)
      (pair (int_range 1 3) (frequency [ (3, gen_install); (1, gen_delete) ])))

let prop_flow_mods_equiv =
  QCheck2.Test.make
    ~name:"incremental check_flow_mods = full differential check" ~count:500
    QCheck2.Gen.(
      triple bool
        (list_size (int_range 0 8) gen_op)
        (list_size (int_range 1 3) gen_mod))
    (fun (ring, ops, mods) ->
      let clock, net = make_net ring in
      let eng = Incremental.create net in
      List.iter (apply_op net clock) ops;
      (* Warm the persistent cache first, as a previous transaction would
         have; the hypothetical pass must not be disturbed by (or disturb)
         it. *)
      ignore (Incremental.check ~invariants:invs eng);
      Incremental.check_flow_mods ~invariants:invs eng mods
      = Checker.check_flow_mods ~invariants:invs (Snapshot.of_net net) mods)

(* -- unit tests ---------------------------------------------------------- *)

let test_eviction_bounds_cache () =
  let clock, net = make_net true in
  ignore clock;
  let evicted = ref 0 in
  let reported = ref max_int in
  let observer = function
    | Incremental.Trace_evicted { bytes } ->
        incr evicted;
        reported := bytes
    | _ -> ()
  in
  let budget = 512 in
  let eng = Incremental.create ~observer ~trace_cache_budget:budget net in
  for i = 1 to 30 do
    ignore
      (Net.send net
         ((i mod 3) + 1)
         (Message.message
            (Message.Flow_mod
               (Message.flow_add ~priority:(10 + i)
                  patterns.(i mod Array.length patterns)
                  [ Action.Output ((i mod 2) + 1) ]))));
    T_util.checkb "equivalence under eviction" true
      (Incremental.check ~invariants:invs eng
      = Checker.check ~invariants:invs (Snapshot.of_net net))
  done;
  T_util.checkb "budget forced evictions" true (!evicted > 0);
  T_util.checki "stats agree with observer" !evicted
    (Incremental.stats eng).Incremental.evictions;
  T_util.checkb "event reports post-eviction size" true
    (!reported = Incremental.cache_bytes eng || !reported <= budget);
  T_util.checkb "cache never empty" true (Incremental.cache_lines eng >= 1)

let install net sid ?(priority = Message.default_priority) ?(idle = 0)
    pattern actions =
  ignore
    (Net.send net sid
       (Message.message
          (Message.Flow_mod
             (Message.flow_add ~idle_timeout:idle ~priority pattern actions))))

let check_agrees msg eng net =
  T_util.checkb msg true
    (Incremental.check ~invariants:invs eng
    = Checker.check ~invariants:invs (Snapshot.of_net net))

let test_warm_cache_hits () =
  let _, net = make_net false in
  install net 1 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 1 ];
  let eng = Incremental.create net in
  check_agrees "first (cold) check agrees" eng net;
  let cold = Incremental.stats eng in
  T_util.checkb "cold check traced pairs" true (cold.Incremental.misses > 0);
  (* An untouched network: the whole previous result is still valid. *)
  check_agrees "second (warm) check agrees" eng net;
  let warm = Incremental.stats eng in
  T_util.checki "warm check was memoized wholesale" 1
    warm.Incremental.memoized_checks;
  T_util.checki "warm check traced nothing" cold.Incremental.misses
    warm.Incremental.misses;
  T_util.checki "warm check recaptured nothing" cold.Incremental.recaptures
    warm.Incremental.recaptures;
  (* Touch one switch: only traces through it re-run; the rest are served
     from the per-pair cache. *)
  install net 1 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 1 ];
  check_agrees "third (partially dirty) check agrees" eng net;
  let dirty = Incremental.stats eng in
  T_util.checkb "unaffected traces reused" true
    (dirty.Incremental.hits > warm.Incremental.hits);
  T_util.checkb "stale traces re-run" true
    (dirty.Incremental.invalidations > warm.Incremental.invalidations)

let test_switch_reboot_invalidates () =
  let _, net = make_net false in
  install net 1 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 1 ];
  install net 2 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 2 ];
  install net 3 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 100 ];
  let eng = Incremental.create net in
  check_agrees "warmed" eng net;
  Net.apply_fault net (Net.Switch_down 2);
  check_agrees "agrees while switch down" eng net;
  Net.apply_fault net (Net.Switch_up 2);
  (* The reboot emptied s2's table: cached traces through it must die. *)
  check_agrees "agrees after reboot" eng net;
  let s = Incremental.stats eng in
  T_util.checkb "reboot invalidated cached traces" true
    (s.Incremental.invalidations > 0);
  T_util.checkb "reboot re-captured the switch" true
    (s.Incremental.recaptures > 0)

let test_flow_timeout_invalidates () =
  let clock, net = make_net false in
  install net 1 ~idle:1 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 1 ];
  install net 2 ~idle:1 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 2 ];
  install net 3 ~idle:1 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 100 ];
  let eng = Incremental.create net in
  check_agrees "path up while rules live" eng net;
  (* No flow-mod, no fault: only the clock moves. The engine must notice
     the idle expiry on its own (the horizon mechanism) — a version-only
     scheme would serve the stale reachable trace here. *)
  Clock.advance_by clock 5.0;
  check_agrees "agrees after idle expiry" eng net;
  T_util.checkb "expiry made the pair unreachable" true
    (List.exists
       (function Checker.Unreachable _ -> true | _ -> false)
       (Incremental.check ~invariants:invs eng))

let test_hypothetical_mods_do_not_pollute () =
  let _, net = make_net false in
  install net 1 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 1 ];
  install net 2 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 2 ];
  install net 3 (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 100 ];
  let eng = Incremental.create net in
  check_agrees "warmed" eng net;
  let harmful =
    [ (2, Message.flow_delete (Ofp_match.make ~dl_dst:(mac 3) ())) ]
  in
  T_util.checkb "hypothetical delete flagged" true
    (Incremental.check_flow_mods ~invariants:invs eng harmful <> []);
  (* The overlay trace (unreachable) must not have replaced the persistent
     one: the live network still has the rule. *)
  check_agrees "persistent cache untouched by overlay" eng net;
  T_util.checkb "live 1->3 path still clean" true
    (not
       (List.exists
          (function
            | Checker.Unreachable { src = 1; dst = 3 } -> true
            | _ -> false)
          (Incremental.check ~invariants:invs eng)))

(* Partition, degrade, heal: the reliable layer replays shadow intent into
   the rebooted switch (PR "Reliable resync"); the runtime's engine must
   track every one of those writes and agree with a fresh full check at
   each stage. *)
let test_partition_heal_resync_equivalence () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let rt = Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ] in
  let eng = Runtime.incremental rt in
  Runtime.step rt;
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.05;
      Net.inject net src (Packet.tcp ~src_host:src ~dst_host:dst ());
      Runtime.step rt)
    [ (1, 3); (3, 1); (1, 3); (3, 1) ];
  T_util.checkb "path warmed" true (Net.reachable net 1 3);
  check_agrees "agrees on warmed path" eng net;
  Net.apply_fault net (Net.Switch_down 2);
  Runtime.step rt;
  check_agrees "agrees while switch down" eng net;
  Net.apply_fault net (Net.Switch_up 2);
  Runtime.step rt;
  (* Resync replays the learned rules into the empty rebooted table via
     the control channel, not via apply_fault — exactly the kind of write
     the version counters must pick up. *)
  T_util.checkb "resync repaired the path" true (Net.reachable net 1 3);
  check_agrees "agrees after resync replay" eng net;
  T_util.checkb "metrics saw cache traffic" true
    (Metrics.inv_trace_hits (Runtime.metrics rt)
     + Metrics.inv_trace_misses (Runtime.metrics rt)
    > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_check_equiv;
    QCheck_alcotest.to_alcotest prop_flow_mods_equiv;
    Alcotest.test_case "warm cache reuses traces" `Quick test_warm_cache_hits;
    Alcotest.test_case "switch reboot invalidates" `Quick
      test_switch_reboot_invalidates;
    Alcotest.test_case "flow timeout invalidates" `Quick
      test_flow_timeout_invalidates;
    Alcotest.test_case "hypothetical mods do not pollute" `Quick
      test_hypothetical_mods_do_not_pollute;
    QCheck_alcotest.to_alcotest prop_check_equiv_under_eviction;
    Alcotest.test_case "eviction keeps cache bounded and honest" `Quick
      test_eviction_bounds_cache;
    Alcotest.test_case "partition-heal resync equivalence" `Quick
      test_partition_heal_resync_equivalence;
  ]
