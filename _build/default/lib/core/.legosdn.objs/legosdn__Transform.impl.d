lib/core/transform.ml: Controller Event Format List Message Openflow Packet
