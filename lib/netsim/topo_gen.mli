(** Deterministic topology generators for experiments and tests.

    Conventions: switches are numbered from 1; hosts are numbered from 1
    across the whole topology; inter-switch ports start at 1 per switch and
    host-facing ports at 100, so the two ranges never collide. *)

val linear : ?hosts_per_switch:int -> int -> Topology.t
(** [linear n] is a chain s1 — s2 — … — sn. The cheapest topology per
    switch (2 links each, no redundancy), which makes it the reference
    shape for memory-scaling sanity runs: table/match storage grows with
    [n] while path diversity stays constant. *)

val ring : ?hosts_per_switch:int -> int -> Topology.t
(** [ring n] is the chain closed into a cycle ([n >= 3]). *)

val star : ?hosts_per_switch:int -> int -> Topology.t
(** [star n] is a hub (switch 1) with [n] leaf switches; hosts hang off the
    leaves. *)

val tree : ?hosts_per_leaf:int -> depth:int -> fanout:int -> unit -> Topology.t
(** A complete [fanout]-ary tree of switches of the given [depth]
    (depth 0 = a single root). Hosts attach to the leaves. *)

val mesh : ?hosts_per_switch:int -> int -> Topology.t
(** [mesh n] is a full mesh of [n] switches. *)

val random :
  ?hosts_per_switch:int -> seed:int -> switches:int -> extra_links:int
  -> unit -> Topology.t
(** A connected random graph: a random spanning tree plus [extra_links]
    additional random switch-switch links (skipping duplicates), from a
    seeded generator. *)

val fat_tree : int -> Topology.t
(** [fat_tree k] is the canonical k-ary fat-tree data-center fabric
    ([k] even, ≥ 2): [(k/2)²] core switches, [k] pods of [k/2] aggregation
    and [k/2] edge switches, and [k/2] hosts per edge switch — [5k²/4]
    switches and [k³/4] hosts in total (k=4: 20 sw / 16 h; k=8: 80 / 128;
    k=16: 320 / 1024). Switch ids: cores first, then pod by pod
    (aggregation before edge).

    Large-k limits: edge switches put their [k/2] uplinks on ports 1..
    and their [k/2] hosts on ports 100.., so the builder's port ranges
    would collide at k = 200; [k > 128] is rejected. Memory and the
    O(hosts²) invariant pair space bind long before that — at k = 16 full
    default invariant checks already trace ~10⁶ pairs, so big-fabric
    campaigns should restrict to sampled reachability pairs (see the
    [scale] bench group). *)

val jellyfish :
  ?hosts_per_switch:int -> seed:int -> switches:int -> degree:int -> unit
  -> Topology.t
(** A Jellyfish-style random regular-ish graph: every switch aims for
    [degree] inter-switch links, wired by seeded random matching (connected
    by construction via an initial ring). *)
