lib/core/netlog.mli: Controller Counter_cache Message Netsim Openflow Txn_engine
