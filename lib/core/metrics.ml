type app_outage = {
  mutable accumulated : float;
  mutable down_since : float option;
}

type t = {
  mutable n_events : int;
  mutable n_crashes : int;
  mutable n_hangs : int;
  mutable n_byzantine : int;
  mutable n_ignored : int;
  mutable n_transformed : int;
  mutable n_disabled : int;
  mutable n_replayed : int;
  mutable n_dropped_replay : int;
  mutable n_resource : int;
  mutable n_quarantined : int;
  mutable n_suppressed : int;
  mutable n_retransmits : int;
  mutable n_barrier_acks : int;
  mutable n_resyncs : int;
  mutable n_resynced_rules : int;
  mutable n_unreachable : int;
  mutable n_inv_hits : int;
  mutable n_inv_misses : int;
  mutable n_inv_invalidations : int;
  mutable n_inv_recaptures : int;
  mutable n_inv_memoized : int;
  outages : (string, app_outage) Hashtbl.t;
}

let create () =
  {
    n_events = 0;
    n_crashes = 0;
    n_hangs = 0;
    n_byzantine = 0;
    n_ignored = 0;
    n_transformed = 0;
    n_disabled = 0;
    n_replayed = 0;
    n_dropped_replay = 0;
    n_resource = 0;
    n_quarantined = 0;
    n_suppressed = 0;
    n_retransmits = 0;
    n_barrier_acks = 0;
    n_resyncs = 0;
    n_resynced_rules = 0;
    n_unreachable = 0;
    n_inv_hits = 0;
    n_inv_misses = 0;
    n_inv_invalidations = 0;
    n_inv_recaptures = 0;
    n_inv_memoized = 0;
    outages = Hashtbl.create 8;
  }

let incr_events t = t.n_events <- t.n_events + 1
let incr_crash t = t.n_crashes <- t.n_crashes + 1
let incr_hang t = t.n_hangs <- t.n_hangs + 1
let incr_byzantine t = t.n_byzantine <- t.n_byzantine + 1
let incr_ignored t = t.n_ignored <- t.n_ignored + 1
let incr_transformed t = t.n_transformed <- t.n_transformed + 1
let incr_disabled t = t.n_disabled <- t.n_disabled + 1
let incr_replayed t n = t.n_replayed <- t.n_replayed + n
let incr_dropped_in_replay t n = t.n_dropped_replay <- t.n_dropped_replay + n
let incr_resource_breach t = t.n_resource <- t.n_resource + 1
let incr_quarantined t = t.n_quarantined <- t.n_quarantined + 1
let incr_suppressed t = t.n_suppressed <- t.n_suppressed + 1
let incr_retransmits t = t.n_retransmits <- t.n_retransmits + 1
let incr_barrier_acks t = t.n_barrier_acks <- t.n_barrier_acks + 1
let incr_resyncs t = t.n_resyncs <- t.n_resyncs + 1
let incr_resynced_rules t n = t.n_resynced_rules <- t.n_resynced_rules + n
let incr_unreachable t = t.n_unreachable <- t.n_unreachable + 1
let incr_inv_trace_hit t = t.n_inv_hits <- t.n_inv_hits + 1
let incr_inv_trace_miss t = t.n_inv_misses <- t.n_inv_misses + 1

let incr_inv_invalidation t =
  t.n_inv_invalidations <- t.n_inv_invalidations + 1

let incr_inv_recapture t = t.n_inv_recaptures <- t.n_inv_recaptures + 1
let incr_inv_memoized t = t.n_inv_memoized <- t.n_inv_memoized + 1

let events t = t.n_events
let crashes t = t.n_crashes
let hangs t = t.n_hangs
let byzantine_blocked t = t.n_byzantine
let ignored t = t.n_ignored
let transformed t = t.n_transformed
let disabled t = t.n_disabled
let replayed t = t.n_replayed
let dropped_in_replay t = t.n_dropped_replay
let resource_breaches t = t.n_resource
let quarantined t = t.n_quarantined
let suppressed t = t.n_suppressed
let retransmits t = t.n_retransmits
let barrier_acks t = t.n_barrier_acks
let resyncs t = t.n_resyncs
let resynced_rules t = t.n_resynced_rules
let unreachable t = t.n_unreachable
let inv_trace_hits t = t.n_inv_hits
let inv_trace_misses t = t.n_inv_misses
let inv_invalidations t = t.n_inv_invalidations
let inv_recaptures t = t.n_inv_recaptures
let inv_memoized_checks t = t.n_inv_memoized

let outage t app =
  match Hashtbl.find_opt t.outages app with
  | Some o -> o
  | None ->
      let o = { accumulated = 0.; down_since = None } in
      Hashtbl.replace t.outages app o;
      o

let add_app_downtime t ~app seconds =
  let o = outage t app in
  o.accumulated <- o.accumulated +. seconds

let mark_app_down_from t ~app time =
  let o = outage t app in
  if o.down_since = None then o.down_since <- Some time

let app_downtime t ~app ~until =
  match Hashtbl.find_opt t.outages app with
  | None -> 0.
  | Some o ->
      let open_ended =
        match o.down_since with
        | Some since when until > since -> until -. since
        | Some _ | None -> 0.
      in
      o.accumulated +. open_ended

let availability t ~app ~until =
  if until <= 0. then 1.
  else
    let down = min (app_downtime t ~app ~until) until in
    1. -. (down /. until)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>events=%d crashes=%d hangs=%d byzantine=%d@,ignored=%d transformed=%d disabled=%d@,replayed=%d dropped-in-replay=%d resource-breaches=%d@,quarantined=%d suppressed=%d@,retransmits=%d barrier-acks=%d resyncs=%d resynced-rules=%d unreachable=%d@,inv-cache hits=%d misses=%d invalidations=%d recaptures=%d memoized=%d@]"
    t.n_events t.n_crashes t.n_hangs t.n_byzantine t.n_ignored t.n_transformed
    t.n_disabled t.n_replayed t.n_dropped_replay t.n_resource t.n_quarantined
    t.n_suppressed t.n_retransmits t.n_barrier_acks t.n_resyncs
    t.n_resynced_rules t.n_unreachable t.n_inv_hits t.n_inv_misses
    t.n_inv_invalidations t.n_inv_recaptures t.n_inv_memoized
