(** A pure, frozen copy of data-plane state: flow tables, port liveness and
    switch liveness at one instant, plus the (shared, read-only) topology.

    Crash-Pad checks an application's *proposed* output before it touches
    the network, so the snapshot supports applying hypothetical flow-mods
    functionally and probing the result. *)

open Openflow

type t

val of_net : Netsim.Net.t -> t
(** Freeze the current state of a live network. *)

val refresh : t -> Netsim.Net.t -> dirty:Types.switch_id list -> t
(** A new snapshot at the network's current clock that re-captures only the
    [dirty] switches; every other switch's state is shared structurally
    with [t]. The caller (the incremental engine) is responsible for naming
    every switch whose {!Netsim.Sw.version} moved since [t] was taken. *)

val now : t -> float
val topology : t -> Netsim.Topology.t

val entries : t -> Types.switch_id -> Netsim.Flow_entry.t list
(** Flow entries of a switch in priority order; [] for unknown switches. *)

val switch_up : t -> Types.switch_id -> bool
val port_up : t -> Types.switch_id -> Types.port_no -> bool

val apply_flow_mod : t -> Types.switch_id -> Message.flow_mod -> t
(** The snapshot after the flow-mod, computed functionally; the original is
    unchanged. *)

val apply_flow_mods : t -> (Types.switch_id * Message.flow_mod) list -> t

(** Result of tracing one packet through the frozen tables. *)
type probe = {
  reached : Netsim.Topology.host list;
  punted_at : Types.switch_id list;
  blackholed_at : Types.switch_id list;
  looped : bool;
  path : (Types.switch_id * Types.port_no) list;
}

val trace : t -> Netsim.Topology.host -> Packet.t -> probe
(** Follow a packet injected by a host. Pure: no counter or buffer
    changes. *)
