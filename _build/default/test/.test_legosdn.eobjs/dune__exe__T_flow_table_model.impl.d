test/t_flow_table_model.ml: Action Flow_entry Flow_table List Netsim Ofp_match Openflow Option Packet QCheck2 QCheck_alcotest Types
