lib/core/runtime.ml: Controller Crashpad Delay_buffer Event List Metrics Netlog Netsim Sandbox Services Ticket Txn_engine
