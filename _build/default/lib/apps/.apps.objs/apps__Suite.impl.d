lib/apps/suite.ml: Arp_responder Controller Firewall Flooder Hub Learning_switch List Load_balancer Monitor Router Spanning_tree
