type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Obs.Histogram.t

type app_outage = {
  mutable accumulated : float;
  mutable down_since : float option;
}

type t = {
  registry : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
  (* Pre-registered handles for the runtime's own counters: the hot path
     bumps a record field, never the hashtable. *)
  n_events : counter;
  n_crashes : counter;
  n_hangs : counter;
  n_byzantine : counter;
  n_ignored : counter;
  n_transformed : counter;
  n_disabled : counter;
  n_replayed : counter;
  n_dropped_replay : counter;
  n_resource : counter;
  n_quarantined : counter;
  n_suppressed : counter;
  n_retransmits : counter;
  n_barrier_acks : counter;
  n_resyncs : counter;
  n_resynced_rules : counter;
  n_unreachable : counter;
  n_inv_hits : counter;
  n_inv_misses : counter;
  n_inv_invalidations : counter;
  n_inv_recaptures : counter;
  n_inv_memoized : counter;
  n_inv_evictions : counter;
  n_ckpts : counter;
  n_ckpt_restores : counter;
  n_ckpt_hits : counter;
  n_ckpt_misses : counter;
  n_ckpt_deduped : counter;
  n_ckpt_written : counter;
  n_cc_evictions : counter;
  (* Pre-registered gauge: the incremental checker's resident trace-cache
     bytes, updated from the runtime's eviction observer. *)
  g_inv_cache_bytes : gauge;
  outages : (string, app_outage) Hashtbl.t;
}

let register t name metric =
  if Hashtbl.mem t.registry name then
    invalid_arg (Printf.sprintf "Metrics: %S already registered" name);
  Hashtbl.replace t.registry name metric;
  t.order <- name :: t.order

let new_counter t name =
  let c = { c_name = name; c_value = 0 } in
  register t name (Counter c);
  c

let create () =
  (* Sequential let-bindings, not record-field initializers, so the
     registration order (hence [names]) is the declaration order. *)
  let t =
    {
      registry = Hashtbl.create 64;
      order = [];
      n_events = { c_name = "events"; c_value = 0 };
      n_crashes = { c_name = "crashes"; c_value = 0 };
      n_hangs = { c_name = "hangs"; c_value = 0 };
      n_byzantine = { c_name = "byzantine"; c_value = 0 };
      n_ignored = { c_name = "ignored"; c_value = 0 };
      n_transformed = { c_name = "transformed"; c_value = 0 };
      n_disabled = { c_name = "disabled"; c_value = 0 };
      n_replayed = { c_name = "replayed"; c_value = 0 };
      n_dropped_replay = { c_name = "dropped-in-replay"; c_value = 0 };
      n_resource = { c_name = "resource-breaches"; c_value = 0 };
      n_quarantined = { c_name = "quarantined"; c_value = 0 };
      n_suppressed = { c_name = "suppressed"; c_value = 0 };
      n_retransmits = { c_name = "retransmits"; c_value = 0 };
      n_barrier_acks = { c_name = "barrier-acks"; c_value = 0 };
      n_resyncs = { c_name = "resyncs"; c_value = 0 };
      n_resynced_rules = { c_name = "resynced-rules"; c_value = 0 };
      n_unreachable = { c_name = "unreachable"; c_value = 0 };
      n_inv_hits = { c_name = "inv-hits"; c_value = 0 };
      n_inv_misses = { c_name = "inv-misses"; c_value = 0 };
      n_inv_invalidations = { c_name = "inv-invalidations"; c_value = 0 };
      n_inv_recaptures = { c_name = "inv-recaptures"; c_value = 0 };
      n_inv_memoized = { c_name = "inv-memoized"; c_value = 0 };
      n_inv_evictions = { c_name = "inv-evictions"; c_value = 0 };
      n_ckpts = { c_name = "checkpoints"; c_value = 0 };
      n_ckpt_restores = { c_name = "ckpt-restores"; c_value = 0 };
      n_ckpt_hits = { c_name = "ckpt-chunk-hits"; c_value = 0 };
      n_ckpt_misses = { c_name = "ckpt-chunk-misses"; c_value = 0 };
      n_ckpt_deduped = { c_name = "ckpt-bytes-deduped"; c_value = 0 };
      n_ckpt_written = { c_name = "ckpt-bytes-written"; c_value = 0 };
      n_cc_evictions = { c_name = "counter-cache-evictions"; c_value = 0 };
      g_inv_cache_bytes =
        { g_name = "inv-trace-cache-bytes"; g_value = 0. };
      outages = Hashtbl.create 8;
    }
  in
  List.iter
    (fun c -> register t c.c_name (Counter c))
    [
      t.n_events; t.n_crashes; t.n_hangs; t.n_byzantine; t.n_ignored;
      t.n_transformed; t.n_disabled; t.n_replayed; t.n_dropped_replay;
      t.n_resource; t.n_quarantined; t.n_suppressed; t.n_retransmits;
      t.n_barrier_acks; t.n_resyncs; t.n_resynced_rules; t.n_unreachable;
      t.n_inv_hits; t.n_inv_misses; t.n_inv_invalidations;
      t.n_inv_recaptures; t.n_inv_memoized; t.n_inv_evictions;
      t.n_ckpts; t.n_ckpt_restores;
      t.n_ckpt_hits; t.n_ckpt_misses; t.n_ckpt_deduped; t.n_ckpt_written;
      t.n_cc_evictions;
    ];
  register t t.g_inv_cache_bytes.g_name (Gauge t.g_inv_cache_bytes);
  t

(* ---------------- registry API ---------------- *)

let counter t name =
  match Hashtbl.find_opt t.registry name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)
  | None -> new_counter t name

let gauge t name =
  match Hashtbl.find_opt t.registry name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
  | None ->
      let g = { g_name = name; g_value = 0. } in
      register t name (Gauge g);
      g

let histogram t name =
  match Hashtbl.find_opt t.registry name with
  | Some (Histogram h) -> h
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None ->
      let h = Obs.Histogram.create () in
      register t name (Histogram h);
      h

let attach_histogram t name h =
  match Hashtbl.find_opt t.registry name with
  | Some (Histogram _) -> Hashtbl.replace t.registry name (Histogram h)
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None -> register t name (Histogram h)

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let counter_name c = c.c_name
let set g v = g.g_value <- v
let gauge_value g = g.g_value
let gauge_name g = g.g_name
let find t name = Hashtbl.find_opt t.registry name
let names t = List.rev t.order

let pp_registry fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i name ->
      if i > 0 then Format.fprintf fmt "@,";
      match Hashtbl.find_opt t.registry name with
      | Some (Counter c) -> Format.fprintf fmt "%s=%d" name c.c_value
      | Some (Gauge g) -> Format.fprintf fmt "%s=%g" name g.g_value
      | Some (Histogram h) ->
          Format.fprintf fmt "%s: %a" name Obs.Histogram.pp h
      | None -> ())
    (names t);
  Format.fprintf fmt "@]"

(* ---------------- compat view ---------------- *)

let incr_events t = incr t.n_events
let incr_crash t = incr t.n_crashes
let incr_hang t = incr t.n_hangs
let incr_byzantine t = incr t.n_byzantine
let incr_ignored t = incr t.n_ignored
let incr_transformed t = incr t.n_transformed
let incr_disabled t = incr t.n_disabled
let incr_replayed t n = add t.n_replayed n
let incr_dropped_in_replay t n = add t.n_dropped_replay n
let incr_resource_breach t = incr t.n_resource
let incr_quarantined t = incr t.n_quarantined
let incr_suppressed t = incr t.n_suppressed
let incr_retransmits t = incr t.n_retransmits
let incr_barrier_acks t = incr t.n_barrier_acks
let incr_resyncs t = incr t.n_resyncs
let incr_resynced_rules t n = add t.n_resynced_rules n
let incr_unreachable t = incr t.n_unreachable

(* Intent (declarative policy) counters live in the registry only: they
   postdate the flat record and nothing needs the extra field. *)
let incr_policy_compromise t = incr (counter t "policy_compromises")
let incr_policy_rejected t = incr (counter t "policy_rejected")
let incr_policy_reconcile t = incr (counter t "policy_reconciles")
let policy_compromises t = value (counter t "policy_compromises")
let policy_rejected t = value (counter t "policy_rejected")
let policy_reconciles t = value (counter t "policy_reconciles")
(* N-version voter counters: registry-only, like the intent counters —
   they postdate the flat record, and divergence diagnostics are typed
   metrics now instead of Command.Log strings in the winning output. *)
let incr_nv_events t = incr (counter t "nversion_events")
let incr_nv_masked t = incr (counter t "nversion_masked")
let incr_nv_outvoted t = incr (counter t "nversion_outvoted")
let incr_nv_variant_crashes t = incr (counter t "nversion_variant_crashes")
let incr_nv_no_majority t = incr (counter t "nversion_no_majority")
let incr_nv_resyncs t = incr (counter t "nversion_resyncs")
let add_nv_resync_bytes t n = add (counter t "nversion_resync_bytes") n
let incr_nv_sheds t = incr (counter t "nversion_sheds")
let incr_nv_grows t = incr (counter t "nversion_grows")
let nv_events t = value (counter t "nversion_events")
let nv_masked t = value (counter t "nversion_masked")
let nv_outvoted t = value (counter t "nversion_outvoted")
let nv_variant_crashes t = value (counter t "nversion_variant_crashes")
let nv_no_majority t = value (counter t "nversion_no_majority")
let nv_resyncs t = value (counter t "nversion_resyncs")
let nv_resync_bytes t = value (counter t "nversion_resync_bytes")
let nv_sheds t = value (counter t "nversion_sheds")
let nv_grows t = value (counter t "nversion_grows")
let incr_inv_trace_hit t = incr t.n_inv_hits
let incr_inv_trace_miss t = incr t.n_inv_misses
let incr_inv_invalidation t = incr t.n_inv_invalidations
let incr_inv_recapture t = incr t.n_inv_recaptures
let incr_inv_memoized t = incr t.n_inv_memoized
let incr_inv_eviction t = incr t.n_inv_evictions
let set_inv_cache_bytes t bytes = set t.g_inv_cache_bytes (float_of_int bytes)
let incr_checkpoint t = incr t.n_ckpts
let incr_ckpt_restore t = incr t.n_ckpt_restores
let add_ckpt_chunk_hits t n = add t.n_ckpt_hits n
let add_ckpt_chunk_misses t n = add t.n_ckpt_misses n
let add_ckpt_bytes_deduped t n = add t.n_ckpt_deduped n
let add_ckpt_bytes_written t n = add t.n_ckpt_written n
let incr_counter_cache_eviction t = incr t.n_cc_evictions

let events t = value t.n_events
let crashes t = value t.n_crashes
let hangs t = value t.n_hangs
let byzantine_blocked t = value t.n_byzantine
let ignored t = value t.n_ignored
let transformed t = value t.n_transformed
let disabled t = value t.n_disabled
let replayed t = value t.n_replayed
let dropped_in_replay t = value t.n_dropped_replay
let resource_breaches t = value t.n_resource
let quarantined t = value t.n_quarantined
let suppressed t = value t.n_suppressed
let retransmits t = value t.n_retransmits
let barrier_acks t = value t.n_barrier_acks
let resyncs t = value t.n_resyncs
let resynced_rules t = value t.n_resynced_rules
let unreachable t = value t.n_unreachable
let inv_trace_hits t = value t.n_inv_hits
let inv_trace_misses t = value t.n_inv_misses
let inv_invalidations t = value t.n_inv_invalidations
let inv_recaptures t = value t.n_inv_recaptures
let inv_memoized_checks t = value t.n_inv_memoized
let inv_evictions t = value t.n_inv_evictions
let inv_cache_bytes t = int_of_float (gauge_value t.g_inv_cache_bytes)
let checkpoints t = value t.n_ckpts
let ckpt_restores t = value t.n_ckpt_restores
let ckpt_chunk_hits t = value t.n_ckpt_hits
let ckpt_chunk_misses t = value t.n_ckpt_misses
let ckpt_bytes_deduped t = value t.n_ckpt_deduped
let ckpt_bytes_written t = value t.n_ckpt_written
let counter_cache_evictions t = value t.n_cc_evictions

(* ---------------- per-app downtime ---------------- *)

let outage t app =
  match Hashtbl.find_opt t.outages app with
  | Some o -> o
  | None ->
      let o = { accumulated = 0.; down_since = None } in
      Hashtbl.replace t.outages app o;
      o

let add_app_downtime t ~app seconds =
  let o = outage t app in
  o.accumulated <- o.accumulated +. seconds

let mark_app_down_from t ~app time =
  let o = outage t app in
  if o.down_since = None then o.down_since <- Some time

let app_downtime t ~app ~until =
  match Hashtbl.find_opt t.outages app with
  | None -> 0.
  | Some o ->
      let open_ended =
        match o.down_since with
        | Some since when until > since -> until -. since
        | Some _ | None -> 0.
      in
      o.accumulated +. open_ended

let availability t ~app ~until =
  if until <= 0. then 1.
  else
    let down = min (app_downtime t ~app ~until) until in
    1. -. (down /. until)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>events=%d crashes=%d hangs=%d byzantine=%d@,ignored=%d transformed=%d disabled=%d@,replayed=%d dropped-in-replay=%d resource-breaches=%d@,quarantined=%d suppressed=%d@,retransmits=%d barrier-acks=%d resyncs=%d resynced-rules=%d unreachable=%d@,inv-cache hits=%d misses=%d invalidations=%d recaptures=%d memoized=%d evictions=%d@,checkpoints=%d ckpt-restores=%d ckpt-chunk hits=%d misses=%d deduped=%d written=%d cc-evictions=%d@,nversion events=%d masked=%d outvoted=%d variant-crashes=%d no-majority=%d nv-resyncs=%d nv-resync-bytes=%d sheds=%d grows=%d@]"
    (events t) (crashes t) (hangs t) (byzantine_blocked t) (ignored t)
    (transformed t) (disabled t) (replayed t) (dropped_in_replay t)
    (resource_breaches t) (quarantined t) (suppressed t) (retransmits t)
    (barrier_acks t) (resyncs t) (resynced_rules t) (unreachable t)
    (inv_trace_hits t) (inv_trace_misses t) (inv_invalidations t)
    (inv_recaptures t) (inv_memoized_checks t) (inv_evictions t)
    (checkpoints t)
    (ckpt_restores t) (ckpt_chunk_hits t) (ckpt_chunk_misses t)
    (ckpt_bytes_deduped t) (ckpt_bytes_written t)
    (counter_cache_evictions t)
    (nv_events t) (nv_masked t) (nv_outvoted t) (nv_variant_crashes t)
    (nv_no_majority t) (nv_resyncs t) (nv_resync_bytes t) (nv_sheds t)
    (nv_grows t)
