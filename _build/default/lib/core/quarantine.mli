(** Event quarantine: handling failures that span multiple transactions
    (§5 "Handling failures that span multiple transactions").

    Crash-Pad's per-event recovery assumes the most recent event is the
    culprit. Two situations break that assumption: a deterministic bug that
    keeps re-firing on structurally identical events (each recovery
    succeeds, the next delivery crashes again), and cumulative bugs where
    the crash is induced by a *set* of earlier events. The quarantine
    store fixes both:

    - every failure is recorded against the (application, event) pair; once
      the same pair has failed [threshold] times, the event signature is
      quarantined and future deliveries are filtered out before they reach
      the application — no more crash/recover churn;
    - for cumulative bugs, {!deep_analyze} replays the checkpoint journal
      through STS delta-debugging to find the minimal causal set and
      quarantines each of its members. *)

open Controller

type t

val create : ?threshold:int -> unit -> t
(** [threshold] failures of a structurally identical (app, event) pair
    trigger quarantine (default 2). Raises [Invalid_argument] below 1. *)

val threshold : t -> int

val blocked : t -> app:string -> Event.t -> bool
(** Should this delivery be suppressed? *)

val note_failure : t -> app:string -> Event.t -> [ `Recorded | `Quarantined ]
(** Record one failure; [`Quarantined] when this crossing of the threshold
    just blacklisted the event. *)

val add : t -> app:string -> Event.t -> unit
(** Quarantine unconditionally (used by {!deep_analyze}). *)

val quarantined : t -> app:string -> Event.t list
val total_quarantined : t -> int

val deep_analyze :
  t ->
  app:string ->
  (module App_sig.APP) ->
  App_sig.context ->
  history:Event.t list ->
  Event.t list * int
(** Given the event history that provably crashes a fresh instance of the
    application (checkpoint journal + offending event), run ddmin to find
    the minimal causal sequence, quarantine every member, and return it
    with the oracle-call count. Returns [([], 0)] when the history does not
    actually crash a fresh instance (a genuinely non-deterministic or
    state-dependent failure STS cannot localize). *)
