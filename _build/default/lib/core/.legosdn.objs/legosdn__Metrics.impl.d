lib/core/metrics.ml: Format Hashtbl
