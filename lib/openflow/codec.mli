(** Binary wire codec for {!Message.t}.

    Frames follow the OpenFlow 1.0 framing discipline: an 8-byte header
    (version 0x01, message type, total length, xid) followed by the body.
    Every message that crosses a process boundary in the LegoSDN stack — the
    switch channel and the AppVisor proxy↔stub RPC — goes through this
    codec, so encode/decode cost is the real serialization overhead the
    paper's isolation layer pays. *)

exception Decode_error of string

val encode : Message.t -> bytes
(** Serialize a message to a wire frame. *)

val encode_into : Buf.writer -> Message.t -> unit
(** Append the frame to an existing writer instead of allocating a fresh
    buffer — the reusable-scratch path of the AppVisor RPC codec. The
    frame bytes are identical to {!encode}'s regardless of what precedes
    them in the writer (the header length field is frame-relative). *)

val decode : bytes -> Message.t
(** Parse one frame. Raises {!Decode_error} on malformed input. *)

val decode_at : Buf.reader -> Message.t
(** Parse one frame from a stream position (for framed streams carrying
    several messages back to back). *)

val encoded_size : Message.t -> int
(** Byte length of the encoded frame, without materializing it twice. *)
