open Openflow
module Topology = Netsim.Topology
module Flow_entry = Netsim.Flow_entry

type violation =
  | Forwarding_loop of {
      src : Topology.host;
      dst : Topology.host;
      path : (Types.switch_id * Types.port_no) list;
    }
  | Black_hole of {
      src : Topology.host;
      dst : Topology.host;
      at : Types.switch_id list;
    }
  | Unreachable of { src : Topology.host; dst : Topology.host }
  | Drop_all_rule of { sw : Types.switch_id; priority : int }
  | Waypoint_bypassed of {
      src : Topology.host;
      dst : Topology.host;
      waypoint : Types.switch_id;
    }
  | Isolation_breached of { src : Topology.host; dst : Topology.host }

type invariant =
  | Loop_freedom
  | Black_hole_freedom
  | Pairwise_reachability of (Topology.host * Topology.host) list
  | No_drop_all
  | Waypoint of {
      pairs : (Topology.host * Topology.host) list;
      via : Types.switch_id;
    }
  | Isolation of {
      group_a : Topology.host list;
      group_b : Topology.host list;
    }

let default = [ Loop_freedom; Black_hole_freedom; No_drop_all ]

let canonical_packet src dst = Packet.tcp ~src_host:src ~dst_host:dst ()

let host_pairs topo =
  let hosts = Topology.hosts topo in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if src <> dst then Some (src, dst) else None)
        hosts)
    hosts

(* The per-pair probing logic is parameterized on the trace function so a
   caching layer (Incremental) can serve memoized probes: every invariant
   below is a pure function of the probe and the per-switch rule lists, so
   any trace provider that agrees with [Snapshot.trace] yields identical
   violations in identical order. *)
let check_one ~trace snap acc = function
  | Loop_freedom ->
      List.fold_left
        (fun acc (src, dst) ->
          let probe = trace src dst in
          if probe.Snapshot.looped then
            Forwarding_loop { src; dst; path = probe.Snapshot.path } :: acc
          else acc)
        acc
        (host_pairs (Snapshot.topology snap))
  | Black_hole_freedom ->
      List.fold_left
        (fun acc (src, dst) ->
          let probe = trace src dst in
          match probe.Snapshot.blackholed_at with
          | [] -> acc
          | at -> Black_hole { src; dst; at } :: acc)
        acc
        (host_pairs (Snapshot.topology snap))
  | Pairwise_reachability pairs ->
      List.fold_left
        (fun acc (src, dst) ->
          let probe = trace src dst in
          if List.mem dst probe.Snapshot.reached then acc
          else Unreachable { src; dst } :: acc)
        acc pairs
  | No_drop_all ->
      List.fold_left
        (fun acc sid ->
          List.fold_left
            (fun acc (e : Flow_entry.t) ->
              if
                Ofp_match.equal e.pattern Ofp_match.any
                && Action.is_drop e.actions
                && e.priority >= Message.default_priority
              then Drop_all_rule { sw = sid; priority = e.priority } :: acc
              else acc)
            acc (Snapshot.entries snap sid))
        acc
        (Topology.switches (Snapshot.topology snap))
  | Waypoint { pairs; via } ->
      List.fold_left
        (fun acc (src, dst) ->
          let probe = trace src dst in
          if
            List.mem dst probe.Snapshot.reached
            && not (List.exists (fun (sid, _) -> sid = via) probe.Snapshot.path)
          then Waypoint_bypassed { src; dst; waypoint = via } :: acc
          else acc)
        acc pairs
  | Isolation { group_a; group_b } ->
      let breach src dst acc =
        let probe = trace src dst in
        if List.mem dst probe.Snapshot.reached then
          Isolation_breached { src; dst } :: acc
        else acc
      in
      List.fold_left
        (fun acc a ->
          List.fold_left (fun acc b -> breach a b (breach b a acc)) acc group_b)
        acc group_a

let check_with ?(invariants = default) ~trace snap =
  List.rev (List.fold_left (check_one ~trace snap) [] invariants)

(* The full checker memoizes traces within one call: several invariants
   probe the same (src, dst) pair, and one canonical packet per pair means
   one trace per pair suffices. *)
let memoized_trace snap =
  let memo = Hashtbl.create 64 in
  fun src dst ->
    match Hashtbl.find_opt memo (src, dst) with
    | Some probe -> probe
    | None ->
        let probe = Snapshot.trace snap src (canonical_packet src dst) in
        Hashtbl.replace memo (src, dst) probe;
        probe

let check ?(invariants = default) snap =
  check_with ~invariants ~trace:(memoized_trace snap) snap

(* Dedup key: violation kind plus its endpoints. Deliberately coarser than
   structural equality — a pre-existing black hole for a pair stays
   pre-existing even when a new mod moves it to a different switch — and
   O(1) per violation instead of a quadratic List.mem scan. *)
let violation_key = function
  | Forwarding_loop { src; dst; _ } -> ("loop", src, dst)
  | Black_hole { src; dst; _ } -> ("black-hole", src, dst)
  | Unreachable { src; dst } -> ("unreachable", src, dst)
  | Drop_all_rule { sw; priority } -> ("drop-all", sw, priority)
  | Waypoint_bypassed { src; dst; waypoint } ->
      (Printf.sprintf "waypoint-%d" waypoint, src, dst)
  | Isolation_breached { src; dst } -> ("isolation", src, dst)

let diff_new ~before after =
  let seen = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace seen (violation_key v) ()) before;
  List.filter (fun v -> not (Hashtbl.mem seen (violation_key v))) after

let check_flow_mods ?(invariants = default) snap mods =
  let before = check ~invariants snap in
  let after = check ~invariants (Snapshot.apply_flow_mods snap mods) in
  diff_new ~before after

let violation_kind = function
  | Forwarding_loop _ -> "forwarding-loop"
  | Black_hole _ -> "black-hole"
  | Unreachable _ -> "unreachable"
  | Drop_all_rule _ -> "drop-all-rule"
  | Waypoint_bypassed _ -> "waypoint-bypassed"
  | Isolation_breached _ -> "isolation-breached"

let pp_violation fmt = function
  | Forwarding_loop { src; dst; path } ->
      Format.fprintf fmt "loop on h%d->h%d (path length %d)" src dst
        (List.length path)
  | Black_hole { src; dst; at } ->
      Format.fprintf fmt "black hole on h%d->h%d at [%a]" src dst
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ",")
           Types.pp_switch)
        at
  | Unreachable { src; dst } ->
      Format.fprintf fmt "h%d cannot reach h%d" src dst
  | Drop_all_rule { sw; priority } ->
      Format.fprintf fmt "drop-all rule on %a at priority %d" Types.pp_switch
        sw priority
  | Waypoint_bypassed { src; dst; waypoint } ->
      Format.fprintf fmt "h%d->h%d delivered without traversing %a" src dst
        Types.pp_switch waypoint
  | Isolation_breached { src; dst } ->
      Format.fprintf fmt "isolation breached: h%d can reach h%d" src dst
