examples/diverse_voting.mli:
