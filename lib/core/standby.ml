module Net = Netsim.Net
module Clock = Netsim.Clock

type t = {
  network : Net.t;
  modules : Controller.App_sig.app list;
  config : Runtime.config;
  sync_interval : float;
  mutable active : Runtime.t;
  xfer : State_transfer.t;
  mutable latest : State_transfer.snapshot option;
  (* Absolute virtual-clock deadline for the next sync. Advancing it by
     whole intervals from the *deadline* (not from the time the step
     happened to run) keeps the cadence anchored to the virtual clock:
     however unevenly the driver steps, the sync times are the same
     deterministic sequence under replay. *)
  mutable next_due : float;
  mutable synced_at : float option;
  mutable n_failovers : int;
}

let create ?(config = Runtime.default_config) ?(sync_interval = 1.) network
    modules =
  {
    network;
    modules;
    config;
    sync_interval;
    active = Runtime.create ~config network modules;
    xfer = State_transfer.create ();
    latest = None;
    next_due = 0.;
    synced_at = None;
    n_failovers = 0;
  }

let runtime t = t.active

let now t = Clock.now (Net.clock t.network)

let sync t =
  let at = now t in
  t.latest <-
    Some
      (State_transfer.ship t.xfer
         ~commit_index:(Runtime.events_processed t.active)
         t.active);
  t.synced_at <- Some at;
  while t.next_due <= at do
    t.next_due <- t.next_due +. t.sync_interval
  done

let maybe_sync t = if now t >= t.next_due then sync t

let step t =
  Runtime.step t.active;
  maybe_sync t

let last_sync_at t = t.synced_at

let fail_primary t =
  t.n_failovers <- t.n_failovers + 1;
  (* The dead controller's pending switch messages died with it. *)
  ignore (Net.poll t.network);
  (* Switches remember applied xids: the successor must continue the xid
     sequence or its first commands would look like retransmissions. *)
  let xid_base =
    match Runtime.netlog t.active with
    | Some nl -> Netlog.next_xid nl
    | None -> 1
  in
  let fresh = Runtime.create ~config:t.config ~xid_base t.network t.modules in
  (match t.latest with
  | Some snapshot -> State_transfer.restore t.xfer snapshot fresh
  | None -> ());
  t.active <- fresh;
  (* Take over: re-handshake with every live switch. *)
  Runtime.upgrade_controller fresh;
  t

let failovers t = t.n_failovers
let shipped_bytes t = State_transfer.shipped_bytes t.xfer
let chunk_store t = State_transfer.store t.xfer
