(** Availability and recovery accounting for the LegoSDN runtime.

    Virtual-time bookkeeping: how long was the controller up, how long was
    each application usable, how many failures were subverted and by which
    compromise. The availability experiment (E7) reads these.

    Internally this is a typed metric {e registry}: named counters, gauges
    and latency histograms, created on demand and enumerable for export.
    The original flat-counter API ({!incr_crash}, {!crashes}, …) survives
    as a compat view over pre-registered counters, so existing callers and
    the CLI output are unchanged; new instrumentation should obtain a
    handle once ({!counter}, {!gauge}, {!histogram}) and bump it on the
    hot path with no hashing. *)

type t

val create : unit -> t

(** {1 The registry} *)

type counter
(** A monotone integer. *)

type gauge
(** A last-write-wins float. *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Obs.Histogram.t

val counter : t -> string -> counter
(** Find-or-register. Raises [Invalid_argument] if [name] is already
    registered as a different metric type. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> Obs.Histogram.t

val attach_histogram : t -> string -> Obs.Histogram.t -> unit
(** Register an externally owned histogram (e.g. a tracer's per-span-kind
    latency histogram) under [name], replacing any previous histogram of
    that name. Raises [Invalid_argument] on a name held by a counter or
    gauge. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val find : t -> string -> metric option
val names : t -> string list
(** In registration order. *)

val pp_registry : Format.formatter -> t -> unit
(** Every registered metric, one per line, in registration order. *)

(** {1 Legacy counters — compat view} *)

val incr_events : t -> unit
val incr_crash : t -> unit
val incr_hang : t -> unit
val incr_byzantine : t -> unit
val incr_ignored : t -> unit
val incr_transformed : t -> unit
val incr_disabled : t -> unit
val incr_replayed : t -> int -> unit
val incr_dropped_in_replay : t -> int -> unit
val incr_resource_breach : t -> unit
val incr_quarantined : t -> unit
val incr_suppressed : t -> unit
val incr_retransmits : t -> unit
val incr_barrier_acks : t -> unit
val incr_resyncs : t -> unit
val incr_resynced_rules : t -> int -> unit
val incr_unreachable : t -> unit

val incr_policy_compromise : t -> unit
(** An Equivalence compromise satisfied by recompiling the app's declared
    policy and installing the verified flow-mod diff. *)

val incr_policy_rejected : t -> unit
(** A policy-derived candidate rule-set refused: it would have changed the
    forwarding relation or violated a network invariant. *)

val incr_policy_reconcile : t -> unit
(** Declared intent re-synchronised to the network after a healthy
    delivery changed the compiled tables. *)

val policy_compromises : t -> int
val policy_rejected : t -> int
val policy_reconciles : t -> int

(** {2 N-version voter counters}

    Registry-backed, like the intent counters. These replace the
    [Command.Log] string diagnostics the old in-process functors appended
    to winning outputs: divergence is now observable as typed metrics (and
    [Vote]/[Outvoted] spans), never as extra commands. *)

val incr_nv_events : t -> unit
(** An event delivered through a full voting panel. *)

val incr_nv_masked : t -> unit
(** An election in which at least one live variant's divergent output was
    discarded — a byzantine output masked before reaching the network. *)

val incr_nv_outvoted : t -> unit
(** One variant's output lost an election (per variant, per event). *)

val incr_nv_variant_crashes : t -> unit
(** A variant crashed or hung on an event while the panel stayed live. *)

val incr_nv_no_majority : t -> unit
(** An election with no strict majority; the first-arrival output won. *)

val incr_nv_resyncs : t -> unit
(** A replica rebuilt from the majority snapshot (chunk-store shipped). *)

val add_nv_resync_bytes : t -> int -> unit
(** Logical snapshot bytes shipped across all replica re-syncs. *)

val incr_nv_sheds : t -> unit
(** Adaptive voter shed the panel down to a single active variant. *)

val incr_nv_grows : t -> unit
(** Adaptive voter re-spun the full panel after a failure. *)

val nv_events : t -> int
val nv_masked : t -> int
val nv_outvoted : t -> int
val nv_variant_crashes : t -> int
val nv_no_majority : t -> int
val nv_resyncs : t -> int
val nv_resync_bytes : t -> int
val nv_sheds : t -> int
val nv_grows : t -> int

val incr_inv_trace_hit : t -> unit
val incr_inv_trace_miss : t -> unit
val incr_inv_invalidation : t -> unit
val incr_inv_recapture : t -> unit
val incr_inv_memoized : t -> unit
val incr_inv_eviction : t -> unit

val set_inv_cache_bytes : t -> int -> unit
(** Update the [inv-trace-cache-bytes] gauge: the incremental checker's
    resident trace-cache footprint after an eviction. *)

val incr_checkpoint : t -> unit
val incr_ckpt_restore : t -> unit
val add_ckpt_chunk_hits : t -> int -> unit
val add_ckpt_chunk_misses : t -> int -> unit
val add_ckpt_bytes_deduped : t -> int -> unit
val add_ckpt_bytes_written : t -> int -> unit
val incr_counter_cache_eviction : t -> unit

val events : t -> int
val crashes : t -> int
val hangs : t -> int
val byzantine_blocked : t -> int
val ignored : t -> int
val transformed : t -> int
val disabled : t -> int
val replayed : t -> int
val dropped_in_replay : t -> int
val resource_breaches : t -> int

val quarantined : t -> int
(** Event signatures blacklisted after repeated failures (§5). *)

val suppressed : t -> int
(** Deliveries filtered out because their signature is quarantined. *)

val retransmits : t -> int
(** State-altering messages re-sent after a missing barrier ack. *)

val barrier_acks : t -> int
(** Barrier replies confirming delivery of a state-altering message. *)

val resyncs : t -> int
(** Reconnected switches whose tables were rebuilt from intended state. *)

val resynced_rules : t -> int
(** Rules replayed across all resynchronizations. *)

val unreachable : t -> int
(** Switches declared unreachable after the retry budget ran out. *)

val inv_trace_hits : t -> int
(** Cached traces the incremental invariant checker reused. *)

val inv_trace_misses : t -> int
(** Pairs the incremental checker had to trace from scratch. *)

val inv_invalidations : t -> int
(** Cached traces discarded because a visited switch changed. *)

val inv_recaptures : t -> int
(** Switch states re-frozen into the incremental checker's snapshot. *)

val inv_memoized_checks : t -> int
(** Whole checks answered from the previous result (nothing changed). *)

val inv_evictions : t -> int
(** Cached traces dropped to enforce the trace-cache byte budget. *)

val inv_cache_bytes : t -> int
(** Last value of the [inv-trace-cache-bytes] gauge. *)

val checkpoints : t -> int
(** Application checkpoints taken (full or delta). *)

val ckpt_restores : t -> int
(** Snapshots materialized from the chunk store for a restore. *)

val ckpt_chunk_hits : t -> int
(** Chunks a delta checkpoint found already stored (deduplicated). *)

val ckpt_chunk_misses : t -> int
(** Chunks a delta checkpoint had to write. *)

val ckpt_bytes_deduped : t -> int
(** Snapshot bytes not written thanks to chunk reuse. *)

val ckpt_bytes_written : t -> int
(** Bytes checkpoints actually wrote (chunk data + manifest overhead). *)

val counter_cache_evictions : t -> int
(** Banked rule identities dropped by the counter-cache LRU bound. *)

(** {1 Per-app downtime} *)

val add_app_downtime : t -> app:string -> float -> unit
(** Charge [seconds] of virtual unavailability to an application (detection
    delay + recovery work). *)

val mark_app_down_from : t -> app:string -> float -> unit
(** The app went down for good at this time (No-Compromise outcome). *)

val app_downtime : t -> app:string -> until:float -> float
(** Total downtime up to [until], including an open-ended outage. *)

val availability : t -> app:string -> until:float -> float
(** [1 - downtime/until]; 1.0 for an app never charged. *)

val pp : Format.formatter -> t -> unit
(** The historical summary line — format unchanged across the registry
    redesign (scripts and the fuzzer's metrics oracle parse it). *)
