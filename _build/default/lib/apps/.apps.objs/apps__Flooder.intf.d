lib/apps/flooder.mli: Controller
