test/t_services.ml: Action Alcotest Controller List Message Net Netsim Ofp_match Openflow T_util Topo_gen Topology Types
