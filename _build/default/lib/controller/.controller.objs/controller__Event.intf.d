lib/controller/event.mli: Format Message Openflow Types
