test/t_topology.ml: Alcotest Hashtbl List Netsim Option QCheck2 QCheck_alcotest T_util Topo_gen Topology
