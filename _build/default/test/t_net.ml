open Openflow
open Netsim

(* Install a chain of rules so h1 -> h2 works across a linear topology. *)
let program_linear net =
  (* linear 3: h1@s1:100, h2@s2:100, h3@s3:100; s1:1-s2:1, s2:2-s3:1 *)
  let add sid actions =
    ignore
      (Net.send net sid
         (Message.message
            (Message.Flow_mod
               (Message.flow_add
                  (Ofp_match.make ~dl_dst:(Types.mac_of_host 2) ())
                  actions))))
  in
  add 1 [ Action.Output 1 ];
  add 2 [ Action.Output 100 ]

let setup () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  (clock, net)

let test_initial_handshake () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear 2) in
  let connects =
    Net.poll net
    |> List.filter (function Net.Switch_connected _ -> true | _ -> false)
  in
  T_util.checki "one handshake per switch" 2 (List.length connects)

let test_inject_miss_generates_packet_in () =
  let _, net = setup () in
  Net.inject net 1 (T_util.tcp_packet 1 2);
  let punts =
    Net.poll net
    |> List.filter_map (function
         | Net.From_switch (sid, { Message.payload = Message.Packet_in _; _ }) ->
             Some sid
         | _ -> None)
  in
  Alcotest.(check (list int)) "miss at the access switch" [ 1 ] punts

let test_programmed_delivery () =
  let _, net = setup () in
  program_linear net;
  Net.inject net 1 (T_util.tcp_packet 1 2);
  let delivered =
    Net.poll net
    |> List.filter_map (function
         | Net.Delivered (h, _) -> Some h
         | _ -> None)
  in
  Alcotest.(check (list int)) "delivered to h2" [ 2 ] delivered;
  T_util.checki "stats count delivery" 1 (Net.stats net).Net.delivered

let test_probe_and_reachable () =
  let _, net = setup () in
  program_linear net;
  T_util.checkb "h1 reaches h2" true (Net.reachable net 1 2);
  T_util.checkb "h2 cannot reach h1 (no reverse rules)" false
    (Net.reachable net 2 1);
  let probe = Net.probe net 1 (T_util.tcp_packet 1 2) in
  Alcotest.(check (list int)) "probe path switches" [ 1; 2 ]
    (List.map fst probe.Net.path)

let test_probe_does_not_mutate () =
  let _, net = setup () in
  program_linear net;
  let before = (Flow_table.entries (Net.switch net 1).Sw.table |> List.hd).Flow_entry.packet_count in
  ignore (Net.probe net 1 (T_util.tcp_packet 1 2));
  let after = (Flow_table.entries (Net.switch net 1).Sw.table |> List.hd).Flow_entry.packet_count in
  T_util.checki "counters untouched by probe" before after

let test_connectivity_metric () =
  let _, net = setup () in
  T_util.checkb "nothing programmed: 0 connectivity" true
    (Net.connectivity net = 0.);
  program_linear net;
  (* exactly 1 of 6 ordered pairs works *)
  Alcotest.(check (float 0.001)) "1/6 pairs" (1. /. 6.) (Net.connectivity net)

let test_link_down_notifications () =
  let _, net = setup () in
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  let port_downs =
    Net.poll net
    |> List.filter_map (function
         | Net.From_switch (sid, { Message.payload = Message.Port_status (_, d); _ })
           when not d.Message.up ->
             Some sid
         | _ -> None)
  in
  Alcotest.(check (list int)) "both ends report port down" [ 1; 2 ]
    (List.sort compare port_downs)

let test_link_down_kills_path () =
  let _, net = setup () in
  program_linear net;
  T_util.checkb "path up" true (Net.reachable net 1 2);
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  T_util.checkb "path broken" false (Net.reachable net 1 2)

let test_switch_down_and_reboot () =
  let _, net = setup () in
  program_linear net;
  Net.apply_fault net (Net.Switch_down 2);
  let notes = Net.poll net in
  T_util.checkb "disconnect notification" true
    (List.exists (function Net.Switch_disconnected 2 -> true | _ -> false) notes);
  T_util.checkb "unreachable while down" false (Net.reachable net 1 2);
  Net.apply_fault net (Net.Switch_up 2);
  let notes = Net.poll net in
  T_util.checkb "reconnect notification" true
    (List.exists (function Net.Switch_connected (2, _) -> true | _ -> false) notes);
  T_util.checki "reboot cleared the flow table" 0
    (Flow_table.size (Net.switch net 2).Sw.table);
  T_util.checkb "still unreachable (rules lost in reboot)" false
    (Net.reachable net 1 2)

let test_loop_guard () =
  (* Program an actual forwarding loop on a ring and check the hop limit
     kills the packet and counts it. *)
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.ring 3) in
  ignore (Net.poll net);
  (* ring 3: s1:1-s2:1, s2:2-s3:1, s3:2-s1:2 — forward everything around. *)
  let add sid port =
    ignore
      (Net.send net sid
         (Message.message
            (Message.Flow_mod (Message.flow_add Ofp_match.any [ Action.Output port ]))))
  in
  add 1 1;
  add 2 2;
  add 3 2;
  Net.inject net 1 (T_util.tcp_packet 1 2);
  T_util.checkb "loop detected by hop limit" true ((Net.stats net).Net.looped > 0);
  let probe = Net.probe net 1 (T_util.tcp_packet 1 2) in
  T_util.checkb "probe flags the loop" true probe.Net.looped

let test_expiry_tick () =
  let clock, net = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add ~hard_timeout:5 ~notify_when_removed:true
                Ofp_match.any [ Action.Output 1 ]))));
  Clock.advance_to clock 6.;
  Net.tick net;
  let removed =
    Net.poll net
    |> List.filter (function
         | Net.From_switch (1, { Message.payload = Message.Flow_removed _; _ }) -> true
         | _ -> false)
  in
  T_util.checki "flow removed notification surfaced" 1 (List.length removed)

let test_inject_on_dead_access_link () =
  let _, net = setup () in
  program_linear net;
  Net.apply_fault net (Net.Link_down (Topology.Host 1, Topology.Switch 1));
  ignore (Net.poll net);
  Net.inject net 1 (T_util.tcp_packet 1 2);
  let delivered =
    Net.poll net |> List.filter (function Net.Delivered _ -> true | _ -> false)
  in
  T_util.checki "nothing delivered through dead NIC" 0 (List.length delivered)

let suite =
  [
    Alcotest.test_case "initial handshake" `Quick test_initial_handshake;
    Alcotest.test_case "miss raises packet_in" `Quick test_inject_miss_generates_packet_in;
    Alcotest.test_case "programmed path delivers" `Quick test_programmed_delivery;
    Alcotest.test_case "probe and reachable" `Quick test_probe_and_reachable;
    Alcotest.test_case "probe is read-only" `Quick test_probe_does_not_mutate;
    Alcotest.test_case "connectivity metric" `Quick test_connectivity_metric;
    Alcotest.test_case "link down notifies both ends" `Quick test_link_down_notifications;
    Alcotest.test_case "link down breaks path" `Quick test_link_down_kills_path;
    Alcotest.test_case "switch down and reboot" `Quick test_switch_down_and_reboot;
    Alcotest.test_case "forwarding loop guard" `Quick test_loop_guard;
    Alcotest.test_case "flow expiry via tick" `Quick test_expiry_tick;
    Alcotest.test_case "dead access link" `Quick test_inject_on_dead_access_link;
  ]
