module App_sig = Controller.App_sig
module Config_lang = Legosdn.Config_lang
module Runtime = Legosdn.Runtime
module Crashpad = Legosdn.Crashpad
module Recovery_policy = Legosdn.Recovery_policy
module Quarantine = Legosdn.Quarantine
module Detector = Legosdn.Detector
module Resources = Legosdn.Resources
module Checker = Invariants.Checker
module Event = Controller.Event

let example =
  {|
# production config
checkpoint every 5
engine netlog
replicas 3
election timeout 0.1 0.25
quarantine threshold 3
heartbeat interval 0.2 misses 5
rpc timeout 0.01
limit state-bytes 200000
limit commands-per-event 128
invariant loop-freedom
invariant no-drop-all
invariant isolation 1,2|5,6
invariant waypoint via 3 pairs 1:5,2:6
app firewall event * => no-compromise
app * event switch_down => equivalence
default => absolute
|}

let test_parse_full_example () =
  let c = Config_lang.parse_exn example in
  T_util.checki "checkpoint k" 5 c.Runtime.checkpoint_every;
  T_util.checkb "engine" true (c.Runtime.engine = Runtime.Netlog_engine);
  T_util.checki "replicas" 3 c.Runtime.cluster.Runtime.replicas;
  Alcotest.(check (float 1e-9)) "election lo" 0.1
    c.Runtime.cluster.Runtime.election_lo;
  Alcotest.(check (float 1e-9)) "election hi" 0.25
    c.Runtime.cluster.Runtime.election_hi;
  let cp = c.Runtime.crashpad in
  (match cp.Crashpad.quarantine with
  | Some q -> T_util.checki "quarantine threshold" 3 (Quarantine.threshold q)
  | None -> Alcotest.fail "quarantine expected");
  Alcotest.(check (float 1e-9)) "heartbeat interval" 0.2
    cp.Crashpad.timing.Detector.heartbeat_interval;
  T_util.checki "misses" 5 cp.Crashpad.timing.Detector.heartbeat_misses;
  Alcotest.(check (float 1e-9)) "rpc timeout" 0.01
    cp.Crashpad.timing.Detector.rpc_timeout;
  T_util.checkb "state limit" true
    (cp.Crashpad.limits.Resources.max_state_bytes = Some 200_000);
  T_util.checkb "command limit" true
    (cp.Crashpad.limits.Resources.max_commands_per_event = Some 128);
  T_util.checki "four invariants selected" 4 (List.length cp.Crashpad.invariants);
  T_util.checkb "isolation invariant present" true
    (List.mem
       (Checker.Isolation { group_a = [ 1; 2 ]; group_b = [ 5; 6 ] })
       cp.Crashpad.invariants);
  T_util.checkb "waypoint invariant present" true
    (List.mem
       (Checker.Waypoint { pairs = [ (1, 5); (2, 6) ]; via = 3 })
       cp.Crashpad.invariants);
  T_util.checkb "policy wired through" true
    (Recovery_policy.decide cp.Crashpad.policy ~app:"firewall" Event.K_tick
     = Recovery_policy.No_compromise);
  T_util.checkb "policy default" true
    (Recovery_policy.decide cp.Crashpad.policy ~app:"x" Event.K_packet_in
     = Recovery_policy.Absolute)

let test_empty_is_default () =
  let c = Config_lang.parse_exn "" in
  T_util.checki "default k" 1 c.Runtime.checkpoint_every;
  T_util.checkb "default engine" true (c.Runtime.engine = Runtime.Netlog_engine);
  T_util.checkb "no quarantine" true (c.Runtime.crashpad.Crashpad.quarantine = None);
  T_util.checkb "default single controller" true
    (c.Runtime.cluster = Runtime.default_cluster_config);
  T_util.checkb "default invariants" true
    (c.Runtime.crashpad.Crashpad.invariants = Checker.default)

let test_scale_directives () =
  let c =
    Config_lang.parse_exn
      "trace-cache budget 65536\nworkload trace seed 7 rate 40 alpha 1.5 \
       diurnal 0.25 period 30 churn 0.1"
  in
  T_util.checkb "budget parsed" true (c.Runtime.trace_cache_budget = Some 65536);
  (match c.Runtime.workload with
  | Some w ->
      T_util.checki "workload seed" 7 w.Runtime.w_seed;
      Alcotest.(check (float 1e-9)) "workload rate" 40. w.Runtime.w_rate;
      Alcotest.(check (float 1e-9)) "workload alpha" 1.5 w.Runtime.w_alpha;
      Alcotest.(check (float 1e-9)) "workload diurnal" 0.25 w.Runtime.w_diurnal;
      Alcotest.(check (float 1e-9)) "workload period" 30. w.Runtime.w_period;
      Alcotest.(check (float 1e-9)) "workload churn" 0.1 w.Runtime.w_churn
  | None -> Alcotest.fail "workload expected");
  let d = Config_lang.parse_exn "workload trace\ntrace-cache unbounded" in
  T_util.checkb "bare workload = defaults" true
    (d.Runtime.workload = Some Runtime.default_workload_config);
  T_util.checkb "explicit unbounded" true (d.Runtime.trace_cache_budget = None);
  T_util.checkb "default is unbounded" true
    ((Config_lang.parse_exn "").Runtime.trace_cache_budget = None)

let test_errors_located () =
  let cases =
    [
      ("checkpoint every 0", "cadence");
      ("engine mystery", "directive");
      ("quarantine threshold x", "threshold");
      ("rpc timeout -1", "timeout");
      ("invariant isolation 1,2", "groups");
      ("invariant waypoint via x pairs 1:2", "switch");
      ("app x event nope => absolute", "kind");
      ("default => maybe", "compromise");
      ("default => absolute\ndefault => absolute", "duplicate");
      ("replicas 2", "even cluster size");
      ("replicas x", "replica count");
      ("election timeout 0.3 0.1", "inverted range");
      ("election timeout 0 0.3", "non-positive lo");
      ("trace-cache budget 0", "non-positive budget");
      ("trace-cache budget x", "non-numeric budget");
      ( "workload trace seed 1 rate 0 alpha 1.5 diurnal 0 period 60 churn 0",
        "zero rate" );
      ( "workload trace seed 1 rate 10 alpha 1 diurnal 0 period 60 churn 0",
        "alpha must exceed 1" );
      ( "workload trace seed 1 rate 10 alpha 1.5 diurnal 2 period 60 churn 0",
        "diurnal out of range" );
    ]
  in
  List.iter
    (fun (text, what) ->
      match Config_lang.parse text with
      | Ok _ -> Alcotest.failf "%s should be rejected (%s)" text what
      | Error e -> T_util.checkb "line recorded" true (e.Config_lang.line >= 1))
    cases

(* Semantic equality for configs: quarantine compares by presence and
   threshold (the store is a fresh value each parse). *)
let config_equiv (a : Runtime.config) (b : Runtime.config) =
  a.Runtime.checkpoint_every = b.Runtime.checkpoint_every
  && a.Runtime.checkpoint_mode = b.Runtime.checkpoint_mode
  && a.Runtime.engine = b.Runtime.engine
  && Recovery_policy.equal a.Runtime.crashpad.Crashpad.policy
       b.Runtime.crashpad.Crashpad.policy
  && a.Runtime.crashpad.Crashpad.invariants
     = b.Runtime.crashpad.Crashpad.invariants
  && a.Runtime.crashpad.Crashpad.timing = b.Runtime.crashpad.Crashpad.timing
  && a.Runtime.crashpad.Crashpad.intent = b.Runtime.crashpad.Crashpad.intent
  && a.Runtime.crashpad.Crashpad.limits = b.Runtime.crashpad.Crashpad.limits
  && a.Runtime.reliable = b.Runtime.reliable
  && a.Runtime.cluster = b.Runtime.cluster
  && a.Runtime.dispatch = b.Runtime.dispatch
  && a.Runtime.trace_cache_budget = b.Runtime.trace_cache_budget
  && a.Runtime.workload = b.Runtime.workload
  && a.Runtime.nversion = b.Runtime.nversion
  && Option.map Quarantine.threshold a.Runtime.crashpad.Crashpad.quarantine
     = Option.map Quarantine.threshold b.Runtime.crashpad.Crashpad.quarantine

let test_print_parse_roundtrip () =
  let c = Config_lang.parse_exn example in
  let c2 = Config_lang.parse_exn (Config_lang.print c) in
  T_util.checkb "roundtrip equivalence" true (config_equiv c c2)

let config_gen =
  QCheck2.Gen.(
    let compromise =
      oneofl [ Recovery_policy.No_compromise; Recovery_policy.Absolute; Recovery_policy.Equivalence ]
    in
    let* k = int_range 1 20 in
    let* mode =
      oneofl [ Runtime.Ckpt_full; Runtime.Ckpt_delta; Runtime.Ckpt_delta_adaptive ]
    in
    let* engine = oneofl [ Runtime.Netlog_engine; Runtime.Delay_buffer_engine ] in
    let* quarantine = opt (int_range 1 5) in
    let* state_limit = opt (int_range 1 1_000_000) in
    let* cmd_limit = opt (int_range 1 512) in
    let* invariants =
      list_size (int_bound 3)
        (oneof
           [
             return Checker.Loop_freedom;
             return Checker.Black_hole_freedom;
             return Checker.No_drop_all;
             map
               (fun pairs -> Checker.Pairwise_reachability pairs)
               (list_size (int_range 1 3) (pair (int_range 1 9) (int_range 1 9)));
             map2
               (fun a b ->
                 Checker.Isolation { group_a = a; group_b = b })
               (list_size (int_range 1 3) (int_range 1 9))
               (list_size (int_range 1 3) (int_range 1 9));
           ])
    in
    let rule =
      let* app = opt (oneofl [ "a"; "router" ]) in
      let* kind = opt (oneofl Event.all_kinds) in
      let* action = compromise in
      return { Recovery_policy.app; kind; action }
    in
    let* rules = list_size (int_bound 4) rule in
    let* default = compromise in
    let* rel_enabled = bool in
    let* rel_retries = int_range 0 16 in
    let* replicas = oneofl [ 1; 3; 5 ] in
    (* Exact-decimal timeouts: the printer uses %g, so round-tripping is
       only an equality for values it prints exactly. *)
    let* election_lo = oneofl [ 0.05; 0.1; 0.15; 0.2 ] in
    let* election_hi = oneofl [ 0.25; 0.3; 0.4 ] in
    let* dispatch =
      oneofl
        [
          Runtime.Sequential;
          Runtime.default_sharded;
          Runtime.Sharded { shards = 3; max_batch = 7 };
        ]
    in
    let* trace_cache_budget = opt (int_range 1024 10_000_000) in
    (* Non-adaptive panels print without a shed-after clause, so only a
       zero shed-after round-trips exactly. *)
    let* nversion =
      oneofl
        [
          None;
          Some
            {
              Legosdn.Voter.nv_replicas = 3;
              nv_adaptive = false;
              nv_shed_after = 0;
            };
          Some
            {
              Legosdn.Voter.nv_replicas = 5;
              nv_adaptive = true;
              nv_shed_after = 8;
            };
        ]
    in
    let* intent = bool in
    (* Exact-decimal workload parameters, for the same %g reason. *)
    let* workload =
      opt
        (let* w_seed = int_range 0 1000 in
         let* w_rate = oneofl [ 5.; 20.; 120. ] in
         let* w_alpha = oneofl [ 1.2; 1.5; 2.5 ] in
         let* w_diurnal = oneofl [ 0.; 0.5; 1. ] in
         let* w_period = oneofl [ 30.; 60. ] in
         let* w_churn = oneofl [ 0.; 0.25 ] in
         return
           { Runtime.w_seed; w_rate; w_alpha; w_diurnal; w_period; w_churn })
    in
    return
      {
        Runtime.checkpoint_every = k;
        checkpoint_mode = mode;
        dispatch;
        engine;
        trace_cache_budget;
        workload;
        nversion;
        cluster = { Runtime.replicas; election_lo; election_hi };
        reliable =
          {
            Legosdn.Reliable.enabled = rel_enabled;
            base_timeout = 0.05;
            max_retries = rel_retries;
          };
        crashpad =
          {
            Crashpad.policy = Recovery_policy.make ~default rules;
            invariants =
              (if invariants = [] then Checker.default else invariants);
            timing = Detector.default_timing;
            limits =
              {
                Resources.max_state_bytes = state_limit;
                max_commands_per_event = cmd_limit;
              };
            quarantine =
              Option.map (fun t -> Quarantine.create ~threshold:t ()) quarantine;
            intent;
            batched_checkpoints = false;
          };
      })

let prop_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip for any config" ~count:200
    config_gen (fun c ->
      config_equiv c (Config_lang.parse_exn (Config_lang.print c)))

let test_runtime_accepts_parsed_config () =
  let config = Config_lang.parse_exn example in
  let net =
    Netsim.Net.create (Netsim.Clock.create ())
      (Netsim.Topo_gen.linear ~hosts_per_switch:1 2)
  in
  let rt = Runtime.create ~config net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.step rt;
  T_util.checkb "runtime runs under parsed config" true
    (Runtime.events_processed rt > 0)

let suite =
  [
    Alcotest.test_case "parse full example" `Quick test_parse_full_example;
    Alcotest.test_case "empty file is default config" `Quick test_empty_is_default;
    Alcotest.test_case "errors located" `Quick test_errors_located;
    Alcotest.test_case "trace-cache + workload directives" `Quick
      test_scale_directives;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "runtime accepts parsed config" `Quick
      test_runtime_accepts_parsed_config;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
