(** The transaction-engine interface the LegoSDN runtime programs against.

    Two implementations exist: {!Netlog} (eager apply + inverse-based
    rollback, the paper's design) and {!Delay_buffer} (queue until commit,
    the prototype's stopgap from §4.1). The runtime — and the E9 ablation
    bench — can swap one for the other. *)

open Openflow

type txn = {
  apply : Controller.Command.t -> Message.t list;
      (** Run one application command inside the transaction; returns any
          synchronous switch replies that applications should see (e.g.
          statistics). *)
  commit : unit -> unit;
  abort : unit -> unit;
  issued : unit -> Controller.Command.t list;
      (** Commands applied so far, oldest first. *)
}

type t = {
  engine_name : string;
  begin_txn : app:string -> txn;
}
