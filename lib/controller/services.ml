open Openflow
module Topology = Netsim.Topology
module Net = Netsim.Net
module Clock = Netsim.Clock

type t = {
  clock : Clock.t;
  topo : Topology.t;  (* LLDP oracle only; never mutated here *)
  connected : (int, Message.features) Hashtbl.t;
  port_state : (int * int, bool) Hashtbl.t;  (* (switch, port) -> up *)
  links : (int * int, int * int) Hashtbl.t;
      (* live links, recorded in both directions *)
  hosts : (Types.mac, Types.switch_id * Types.port_no) Hashtbl.t;
}

let create clock topo =
  {
    clock;
    topo;
    connected = Hashtbl.create 16;
    port_state = Hashtbl.create 64;
    links = Hashtbl.create 32;
    hosts = Hashtbl.create 64;
  }

let connected_switches t =
  Hashtbl.fold (fun sid _ acc -> sid :: acc) t.connected []
  |> List.sort compare

let live_links t =
  Hashtbl.fold
    (fun (s1, p1) (s2, p2) acc ->
      { Event.src_switch = s1; src_port = p1; dst_switch = s2; dst_port = p2 }
      :: acc)
    t.links []
  |> List.sort compare

let host_location t mac = Hashtbl.find_opt t.hosts mac

let port_is_up t sid port =
  match Hashtbl.find_opt t.port_state (sid, port) with
  | Some up -> up
  | None -> false

let link_event s1 p1 s2 p2 =
  { Event.src_switch = s1; src_port = p1; dst_switch = s2; dst_port = p2 }

let record_link t s1 p1 s2 p2 =
  Hashtbl.replace t.links (s1, p1) (s2, p2);
  Hashtbl.replace t.links (s2, p2) (s1, p1)

let forget_link t s1 p1 =
  match Hashtbl.find_opt t.links (s1, p1) with
  | None -> None
  | Some (s2, p2) ->
      Hashtbl.remove t.links (s1, p1);
      Hashtbl.remove t.links (s2, p2);
      Some (s2, p2)

(* The oracle's view of who is on the other side of a switch port,
   regardless of current link state. *)
let oracle_peer t sid port =
  Topology.peer_even_if_down t.topo (Topology.Switch sid) port

(* Discover links adjacent to a newly connected switch: both ends must be
   connected, both ports up, and the physical link alive. *)
let discover_links_around t sid =
  List.filter_map
    (fun (port, (l : Topology.link)) ->
      if not l.up then None
      else
        match oracle_peer t sid port with
        | Some { node = Topology.Switch nb; port = nb_port } ->
            if
              Hashtbl.mem t.connected nb
              && port_is_up t sid port && port_is_up t nb nb_port
              && not (Hashtbl.mem t.links (sid, port))
            then begin
              record_link t sid port nb nb_port;
              Some (Event.Link_up (link_event sid port nb nb_port))
            end
            else None
        | Some { node = Topology.Host _; _ } | None -> None)
    (Topology.switch_ports t.topo sid)

let on_switch_connected t sid (features : Message.features) =
  Hashtbl.replace t.connected sid features;
  List.iter
    (fun (d : Message.port_desc) ->
      Hashtbl.replace t.port_state (sid, d.port_no) d.up)
    features.ports;
  Event.Switch_up (sid, features) :: discover_links_around t sid

let on_switch_disconnected t sid =
  Hashtbl.remove t.connected sid;
  (* Links die with the switch; report each once. *)
  let dead =
    Hashtbl.fold
      (fun (s1, p1) (s2, p2) acc ->
        if s1 = sid then (s1, p1, s2, p2) :: acc else acc)
      t.links []
    |> List.sort compare
  in
  let downs =
    List.filter_map
      (fun (s1, p1, s2, p2) ->
        match forget_link t s1 p1 with
        | Some _ -> Some (Event.Link_down (link_event s1 p1 s2 p2))
        | None -> None)
      dead
  in
  downs @ [ Event.Switch_down sid ]

let on_port_status t sid reason (desc : Message.port_desc) =
  Hashtbl.replace t.port_state (sid, desc.port_no) desc.up;
  let base = Event.Port_status (sid, reason, desc) in
  if desc.up then
    (* A port coming back may resurrect a link, if the oracle agrees. *)
    match oracle_peer t sid desc.port_no with
    | Some { node = Topology.Switch nb; port = nb_port } -> (
        match Topology.link_at t.topo (Topology.Switch sid) desc.port_no with
        | Some l
          when l.up && Hashtbl.mem t.connected nb
               && port_is_up t nb nb_port
               && not (Hashtbl.mem t.links (sid, desc.port_no)) ->
            record_link t sid desc.port_no nb nb_port;
            [ base; Event.Link_up (link_event sid desc.port_no nb nb_port) ]
        | Some _ | None -> [ base ])
    | Some { node = Topology.Host _; _ } | None -> [ base ]
  else
    match forget_link t sid desc.port_no with
    | Some (nb, nb_port) ->
        [ base; Event.Link_down (link_event sid desc.port_no nb nb_port) ]
    | None -> [ base ]

let learn_host t sid (pi : Message.packet_in) =
  (* Device manager: learn source MACs seen on host-facing (edge) ports. *)
  match oracle_peer t sid pi.pi_in_port with
  | Some { node = Topology.Host _; _ } ->
      Hashtbl.replace t.hosts pi.pi_packet.Packet.dl_src (sid, pi.pi_in_port)
  | Some { node = Topology.Switch _; _ } | None -> ()

let ingest t = function
  | Net.Switch_connected (sid, features) -> on_switch_connected t sid features
  | Net.Switch_disconnected sid -> on_switch_disconnected t sid
  | Net.From_switch (sid, msg) -> (
      match msg.Message.payload with
      | Message.Packet_in pi ->
          learn_host t sid pi;
          [ Event.Packet_in (sid, pi) ]
      | Message.Flow_removed fr -> [ Event.Flow_removed (sid, fr) ]
      | Message.Port_status (reason, desc) -> on_port_status t sid reason desc
      | Message.Stats_reply sr -> [ Event.Stats_reply (sid, msg.Message.xid, sr) ]
      | Message.Hello | Message.Echo_request _ | Message.Echo_reply _
      | Message.Features_request | Message.Features_reply _
      | Message.Packet_out _ | Message.Flow_mod _ | Message.Port_mod _
      | Message.Stats_request _ | Message.Barrier_request
      | Message.Barrier_reply | Message.Error _ ->
          [])
  | Net.Delivered _ -> []

(* Apply one *dispatched event*'s state effects without emitting anything.
   Every state change [ingest] makes is captured by an event it (or a
   sibling call) emits — switch features, port descs, link endpoints and
   packet-ins all ride on the events themselves — so replaying a log of
   dispatched events through [observe] reconstructs the exact service
   state the ingesting controller had when it dispatched them. Derived
   link events are in the log too, so [Switch_up]/[Port_status] must not
   re-run discovery here: the log already carries its results. *)
let observe t = function
  | Event.Switch_up (sid, (features : Message.features)) ->
      Hashtbl.replace t.connected sid features;
      List.iter
        (fun (d : Message.port_desc) ->
          Hashtbl.replace t.port_state (sid, d.port_no) d.up)
        features.ports
  | Event.Switch_down sid -> Hashtbl.remove t.connected sid
  | Event.Port_status (sid, _reason, desc) ->
      Hashtbl.replace t.port_state (sid, desc.port_no) desc.up
  | Event.Link_up l ->
      record_link t l.Event.src_switch l.Event.src_port l.Event.dst_switch
        l.Event.dst_port
  | Event.Link_down l -> ignore (forget_link t l.Event.src_switch l.Event.src_port)
  | Event.Packet_in (sid, pi) -> learn_host t sid pi
  | Event.Flow_removed _ | Event.Stats_reply _ | Event.Tick _ -> ()

let context t : App_sig.context =
  {
    now = (fun () -> Clock.now t.clock);
    switches = (fun () -> connected_switches t);
    switch_ports =
      (fun sid ->
        match Hashtbl.find_opt t.connected sid with
        | None -> []
        | Some f ->
            f.Message.ports
            |> List.filter_map (fun (d : Message.port_desc) ->
                   if port_is_up t sid d.port_no then Some d.port_no else None)
            |> List.sort compare);
    links = (fun () -> live_links t);
    host_location = (fun mac -> host_location t mac);
  }
