(* Focused unit tests for the small core modules: counter cache, metrics,
   resources, tickets, and the new topology generators / invariants. *)

open Openflow
open Netsim
module Counter_cache = Legosdn.Counter_cache
module Metrics = Legosdn.Metrics
module Resources = Legosdn.Resources
module Ticket = Legosdn.Ticket
module Checker = Invariants.Checker
module Snapshot = Invariants.Snapshot

(* ---- counter cache ---- *)

let pattern80 = Ofp_match.make ~tp_dst:80 ()

let test_cache_accumulates () =
  let c = Counter_cache.create () in
  Alcotest.(check (pair int int)) "empty" (0, 0)
    (Counter_cache.base c 1 pattern80 ~priority:10);
  Counter_cache.credit c 1 pattern80 ~priority:10 ~packets:5 ~bytes:500;
  Counter_cache.credit c 1 pattern80 ~priority:10 ~packets:2 ~bytes:200;
  Alcotest.(check (pair int int)) "accumulated" (7, 700)
    (Counter_cache.base c 1 pattern80 ~priority:10);
  (* Distinct priority and switch are distinct identities. *)
  Alcotest.(check (pair int int)) "priority isolated" (0, 0)
    (Counter_cache.base c 1 pattern80 ~priority:11);
  Alcotest.(check (pair int int)) "switch isolated" (0, 0)
    (Counter_cache.base c 2 pattern80 ~priority:10);
  T_util.checki "one identity" 1 (Counter_cache.entries c)

let test_cache_adjusts_flow_stats () =
  let c = Counter_cache.create () in
  Counter_cache.credit c 1 pattern80 ~priority:10 ~packets:100 ~bytes:9000;
  let fs : Message.flow_stat =
    {
      fs_pattern = pattern80;
      fs_priority = 10;
      fs_cookie = 0L;
      fs_duration = 1;
      fs_idle_timeout = 0;
      fs_hard_timeout = 0;
      fs_packet_count = 3;
      fs_byte_count = 300;
      fs_actions = [];
    }
  in
  match
    Counter_cache.adjust_reply c 1
      ~request:(Message.Flow_stats_request Ofp_match.any)
      (Message.Flow_stats_reply [ fs ])
  with
  | Message.Flow_stats_reply [ adjusted ] ->
      T_util.checki "packets corrected" 103 adjusted.Message.fs_packet_count;
      T_util.checki "bytes corrected" 9300 adjusted.Message.fs_byte_count
  | _ -> Alcotest.fail "flow stats reply expected"

let test_cache_aggregate_scoped_by_pattern () =
  let c = Counter_cache.create () in
  Counter_cache.credit c 1 pattern80 ~priority:10 ~packets:10 ~bytes:1000;
  Counter_cache.credit c 1 (Ofp_match.make ~tp_dst:443 ()) ~priority:10
    ~packets:90 ~bytes:9000;
  let agg = Message.Aggregate_stats_reply { packets = 1; bytes = 100; flows = 2 } in
  (* A request scoped to port 80 only picks up the port-80 bank. *)
  match
    Counter_cache.adjust_reply c 1
      ~request:(Message.Aggregate_stats_request pattern80) agg
  with
  | Message.Aggregate_stats_reply a ->
      T_util.checki "scoped packets" 11 a.packets;
      T_util.checki "scoped bytes" 1100 a.bytes
  | _ -> Alcotest.fail "aggregate reply expected"

let test_cache_leaves_port_stats_alone () =
  let c = Counter_cache.create () in
  let reply = Message.Port_stats_reply [] in
  T_util.checkb "ports untouched" true
    (Counter_cache.adjust_reply c 1
       ~request:(Message.Port_stats_request None) reply
     = reply)

let test_cache_kind_mismatch_untouched () =
  let c = Counter_cache.create () in
  Counter_cache.credit c 1 pattern80 ~priority:10 ~packets:10 ~bytes:1000;
  let agg =
    Message.Aggregate_stats_reply { packets = 1; bytes = 100; flows = 2 }
  in
  (* An aggregate reply to a port-stats or description request must not be
     credited (the old fallback added every banked flow on the switch). *)
  (match
     Counter_cache.adjust_reply c 1
       ~request:(Message.Port_stats_request None) agg
   with
  | Message.Aggregate_stats_reply a ->
      T_util.checki "port-request packets untouched" 1 a.packets;
      T_util.checki "port-request bytes untouched" 100 a.bytes
  | _ -> Alcotest.fail "aggregate reply expected");
  match
    Counter_cache.adjust_reply c 1 ~request:Message.Description_request agg
  with
  | Message.Aggregate_stats_reply a ->
      T_util.checki "description-request untouched" 1 a.packets
  | _ -> Alcotest.fail "aggregate reply expected"

let test_cache_lru_eviction () =
  let observed = ref 0 in
  let c =
    Counter_cache.create ~capacity:2 ~on_evict:(fun () -> incr observed) ()
  in
  Counter_cache.credit c 1 pattern80 ~priority:1 ~packets:1 ~bytes:1;
  Counter_cache.credit c 1 pattern80 ~priority:2 ~packets:2 ~bytes:2;
  (* Touch priority 1 so priority 2 becomes the LRU victim. *)
  ignore (Counter_cache.base c 1 pattern80 ~priority:1);
  Counter_cache.credit c 1 pattern80 ~priority:3 ~packets:3 ~bytes:3;
  T_util.checki "capacity held" 2 (Counter_cache.entries c);
  T_util.checki "one eviction" 1 (Counter_cache.evictions c);
  T_util.checki "observer called" 1 !observed;
  Alcotest.(check (pair int int)) "LRU victim gone" (0, 0)
    (Counter_cache.base c 1 pattern80 ~priority:2);
  Alcotest.(check (pair int int)) "touched identity survives" (1, 1)
    (Counter_cache.base c 1 pattern80 ~priority:1)

let test_cache_consume () =
  let c = Counter_cache.create () in
  Counter_cache.credit c 1 pattern80 ~priority:10 ~packets:7 ~bytes:700;
  (match Counter_cache.consume c 1 pattern80 ~priority:10 with
  | Some (7, 700) -> ()
  | Some _ | None -> Alcotest.fail "banked credit expected");
  Alcotest.(check (pair int int)) "gone after consume" (0, 0)
    (Counter_cache.base c 1 pattern80 ~priority:10);
  T_util.checkb "second consume finds nothing" true
    (Counter_cache.consume c 1 pattern80 ~priority:10 = None)

(* ---- metrics ---- *)

let test_metrics_availability_accounting () =
  let m = Metrics.create () in
  Alcotest.(check (float 1e-9)) "untouched app fully available" 1.0
    (Metrics.availability m ~app:"x" ~until:100.);
  Metrics.add_app_downtime m ~app:"x" 5.;
  Alcotest.(check (float 1e-9)) "bounded downtime" 0.95
    (Metrics.availability m ~app:"x" ~until:100.);
  Metrics.mark_app_down_from m ~app:"x" 50.;
  Alcotest.(check (float 1e-9)) "open-ended outage counted" (5. +. 50.)
    (Metrics.app_downtime m ~app:"x" ~until:100.);
  Alcotest.(check (float 1e-9)) "availability reflects both" 0.45
    (Metrics.availability m ~app:"x" ~until:100.)

let test_metrics_mark_down_idempotent () =
  let m = Metrics.create () in
  Metrics.mark_app_down_from m ~app:"x" 10.;
  Metrics.mark_app_down_from m ~app:"x" 90.;
  Alcotest.(check (float 1e-9)) "first mark wins" 90.
    (Metrics.app_downtime m ~app:"x" ~until:100.)

(* ---- resources ---- *)

let test_resources_unlimited () =
  Alcotest.(check int) "no breaches" 0
    (List.length
       (Resources.check Resources.unlimited
          ~state_bytes:(fun () -> max_int)
          ~commands_emitted:max_int));
  (* With no state limit the (expensive) measurement is never taken. *)
  Alcotest.(check int) "state size not measured when unlimited" 0
    (List.length
       (Resources.check Resources.unlimited
          ~state_bytes:(fun () -> Alcotest.fail "state_bytes forced")
          ~commands_emitted:0))

let test_resources_both_breached () =
  let limits =
    { Resources.max_state_bytes = Some 10; max_commands_per_event = Some 1 }
  in
  let breaches =
    Resources.check limits ~state_bytes:(fun () -> 11) ~commands_emitted:2
  in
  T_util.checki "both breached" 2 (List.length breaches);
  T_util.checkb "descriptions render" true
    (List.for_all (fun b -> String.length (Resources.describe b) > 0) breaches)

let test_resources_boundary () =
  let limits =
    { Resources.max_state_bytes = Some 10; max_commands_per_event = Some 5 }
  in
  T_util.checki "at the limit is fine" 0
    (List.length
       (Resources.check limits ~state_bytes:(fun () -> 10) ~commands_emitted:5))

(* ---- tickets ---- *)

let test_ticket_store () =
  let store = Ticket.store () in
  let t1 =
    Ticket.file store ~now:1.5 ~app:"a" ~diagnosis:"d1"
      ~resolution:Ticket.Ignored ~rolled_back_ops:2 ()
  in
  let _ =
    Ticket.file store ~now:2.5 ~app:"b"
      ~event:(Controller.Event.Switch_down 3) ~diagnosis:"d2"
      ~resolution:(Ticket.Transformed "[link_down]") ~rolled_back_ops:0 ()
  in
  T_util.checki "ids sequential" 1 t1.Ticket.id;
  T_util.checki "count" 2 (Ticket.count store);
  T_util.checki "by_app filter" 1 (List.length (Ticket.by_app store "a"));
  (match Ticket.all store with
  | [ first; second ] ->
      T_util.checkb "oldest first" true
        (first.Ticket.opened_at < second.Ticket.opened_at);
      T_util.checkb "event kind captured" true
        (second.Ticket.event_kind = Some Controller.Event.K_switch_down)
  | _ -> Alcotest.fail "two tickets expected");
  T_util.checkb "resolutions render" true
    (String.length (Ticket.resolution_name (Ticket.Transformed "x")) > 0)

(* ---- fat-tree / jellyfish generators ---- *)

let test_fat_tree_shape () =
  let topo = Topo_gen.fat_tree 4 in
  (* k=4: 4 cores + 4 pods x 4 switches = 20; 16 hosts. *)
  T_util.checki "switches" 20 (List.length (Topology.switches topo));
  T_util.checki "hosts" 16 (List.length (Topology.hosts topo));
  (* Each core has k=4 links; each agg 4; each edge 2 + 2 hosts. *)
  T_util.checki "core degree" 4 (List.length (Topology.neighbor_switches topo 1));
  let edge_sid = 4 + 2 + 1 in
  (* first pod, first edge *)
  T_util.checki "edge uplinks" 2
    (List.length (Topology.neighbor_switches topo edge_sid));
  T_util.checki "edge hosts" 2 (List.length (Topology.hosts_on topo edge_sid))

let test_fat_tree_rejects_odd_k () =
  T_util.checkb "odd k rejected" true
    (try
       ignore (Topo_gen.fat_tree 3);
       false
     with Invalid_argument _ -> true)

let test_jellyfish_connected_and_degree () =
  let topo = Topo_gen.jellyfish ~seed:5 ~switches:12 ~degree:4 () in
  T_util.checki "switches" 12 (List.length (Topology.switches topo));
  List.iter
    (fun sid ->
      let d = List.length (Topology.neighbor_switches topo sid) in
      T_util.checkb "degree within budget" true (d >= 2 && d <= 4))
    (Topology.switches topo)

(* ---- waypoint / isolation invariants ---- *)

let programmed_linear () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  let install sid pattern actions =
    ignore
      (Net.send net sid
         (Message.message (Message.Flow_mod (Message.flow_add pattern actions))))
  in
  (* h1 -> h3 via s1, s2, s3. *)
  install 1 (Ofp_match.make ~dl_dst:(Types.mac_of_host 3) ()) [ Action.Output 1 ];
  install 2 (Ofp_match.make ~dl_dst:(Types.mac_of_host 3) ()) [ Action.Output 2 ];
  install 3 (Ofp_match.make ~dl_dst:(Types.mac_of_host 3) ()) [ Action.Output 100 ];
  net

let test_waypoint_satisfied () =
  let net = programmed_linear () in
  Alcotest.(check (list string)) "path via s2 satisfies waypoint" []
    (List.map Checker.violation_kind
       (Checker.check
          ~invariants:[ Checker.Waypoint { pairs = [ (1, 3) ]; via = 2 } ]
          (Snapshot.of_net net)))

let test_waypoint_bypassed () =
  let net = programmed_linear () in
  T_util.checkb "no path via s1-only waypoint 99" true
    (Checker.check
       ~invariants:[ Checker.Waypoint { pairs = [ (1, 3) ]; via = 99 } ]
       (Snapshot.of_net net)
     |> List.exists (function Checker.Waypoint_bypassed _ -> true | _ -> false))

let test_waypoint_vacuous_when_unreachable () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  Alcotest.(check (list string)) "no delivery, no waypoint violation" []
    (List.map Checker.violation_kind
       (Checker.check
          ~invariants:[ Checker.Waypoint { pairs = [ (1, 3) ]; via = 2 } ]
          (Snapshot.of_net net)))

let test_isolation () =
  let net = programmed_linear () in
  let inv = [ Checker.Isolation { group_a = [ 1 ]; group_b = [ 3 ] } ] in
  T_util.checkb "installed path breaches isolation" true
    (Checker.check ~invariants:inv (Snapshot.of_net net)
     |> List.exists (function Checker.Isolation_breached _ -> true | _ -> false));
  let inv_ok = [ Checker.Isolation { group_a = [ 1 ]; group_b = [ 2 ] } ] in
  Alcotest.(check (list string)) "h1/h2 have no path: isolated" []
    (List.map Checker.violation_kind
       (Checker.check ~invariants:inv_ok (Snapshot.of_net net)))

let suite =
  [
    Alcotest.test_case "cache accumulates per identity" `Quick test_cache_accumulates;
    Alcotest.test_case "cache adjusts flow stats" `Quick test_cache_adjusts_flow_stats;
    Alcotest.test_case "cache aggregate scoping" `Quick test_cache_aggregate_scoped_by_pattern;
    Alcotest.test_case "cache ignores port stats" `Quick test_cache_leaves_port_stats_alone;
    Alcotest.test_case "cache kind mismatch untouched" `Quick
      test_cache_kind_mismatch_untouched;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache consume on reinstall" `Quick test_cache_consume;
    Alcotest.test_case "metrics availability" `Quick test_metrics_availability_accounting;
    Alcotest.test_case "metrics mark-down idempotent" `Quick test_metrics_mark_down_idempotent;
    Alcotest.test_case "resources unlimited" `Quick test_resources_unlimited;
    Alcotest.test_case "resources both breached" `Quick test_resources_both_breached;
    Alcotest.test_case "resources boundary" `Quick test_resources_boundary;
    Alcotest.test_case "ticket store" `Quick test_ticket_store;
    Alcotest.test_case "fat-tree shape" `Quick test_fat_tree_shape;
    Alcotest.test_case "fat-tree odd k" `Quick test_fat_tree_rejects_odd_k;
    Alcotest.test_case "jellyfish degree" `Quick test_jellyfish_connected_and_degree;
    Alcotest.test_case "waypoint satisfied" `Quick test_waypoint_satisfied;
    Alcotest.test_case "waypoint bypassed" `Quick test_waypoint_bypassed;
    Alcotest.test_case "waypoint vacuous" `Quick test_waypoint_vacuous_when_unreachable;
    Alcotest.test_case "isolation" `Quick test_isolation;
  ]
