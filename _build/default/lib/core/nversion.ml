open Controller

type 'a outcome =
  | Voted of 'a * Command.t list
  | Abstained of 'a  (* not subscribed to this event *)
  | Dead of 'a  (* crashed on this event; state unchanged *)

let run (type s) (module A : App_sig.APP with type state = s) ctx (st : s) ev =
  if not (List.mem (Event.kind_of ev) A.subscriptions) then Abstained st
  else
    match A.handle ctx st ev with
    | st', commands -> Voted (st', commands)
    | exception _ -> Dead st

let union_subscriptions lists =
  List.sort_uniq compare (List.concat lists)

(* Majority vote over the command lists of live voters. *)
let elect votes =
  let grouped =
    List.fold_left
      (fun acc cmds ->
        match List.assoc_opt cmds acc with
        | Some n -> (cmds, n + 1) :: List.remove_assoc cmds acc
        | None -> (cmds, 1) :: acc)
      [] votes
  in
  match List.sort (fun (_, a) (_, b) -> compare b a) grouped with
  | (winner, n) :: _ when n >= 2 -> Some winner
  | _ -> None

module Make3 (A : App_sig.APP) (B : App_sig.APP) (C : App_sig.APP) :
  App_sig.APP = struct
  type state = { a : A.state; b : B.state; c : C.state }

  let name = Printf.sprintf "nversion(%s|%s|%s)" A.name B.name C.name

  let subscriptions =
    union_subscriptions [ A.subscriptions; B.subscriptions; C.subscriptions ]

  let init () = { a = A.init (); b = B.init (); c = C.init () }

  let handle ctx st ev =
    let ra = run (module A) ctx st.a ev in
    let rb = run (module B) ctx st.b ev in
    let rc = run (module C) ctx st.c ev in
    let state' =
      {
        a = (match ra with Voted (s, _) | Abstained s | Dead s -> s);
        b = (match rb with Voted (s, _) | Abstained s | Dead s -> s);
        c = (match rc with Voted (s, _) | Abstained s | Dead s -> s);
      }
    in
    let vote_of : type s. s outcome -> Command.t list option = function
      | Voted (_, cmds) -> Some cmds
      | Abstained _ | Dead _ -> None
    in
    let dead_of : type s. s outcome -> bool = function
      | Dead _ -> true
      | Voted _ | Abstained _ -> false
    in
    let abstained_of : type s. s outcome -> bool = function
      | Abstained _ -> true
      | Voted _ | Dead _ -> false
    in
    let votes =
      List.filter_map Fun.id [ vote_of ra; vote_of rb; vote_of rc ]
    in
    let count flags = List.length (List.filter Fun.id flags) in
    let dead = count [ dead_of ra; dead_of rb; dead_of rc ] in
    let abstained =
      count [ abstained_of ra; abstained_of rb; abstained_of rc ]
    in
    if votes = [] && abstained < 3 then
      failwith (name ^ ": every version crashed on this event")
    else
      let commands =
        match elect votes with
        | Some winner ->
            if List.exists (fun v -> not (v = winner)) votes then
              winner @ [ Command.Log (name ^ ": outvoted a divergent version") ]
            else winner
        | None -> (
            match votes with
            | first :: _ ->
                first @ [ Command.Log (name ^ ": no majority; using first live version") ]
            | [] -> [])
      in
      let commands =
        if dead > 0 then
          commands @ [ Command.Log (Printf.sprintf "%s: %d version(s) crashed" name dead) ]
        else commands
      in
      (state', commands)
end

module Make2 (A : App_sig.APP) (B : App_sig.APP) : App_sig.APP = struct
  type state = { a : A.state; b : B.state }

  let name = Printf.sprintf "nversion(%s|%s)" A.name B.name

  let subscriptions = union_subscriptions [ A.subscriptions; B.subscriptions ]

  let init () = { a = A.init (); b = B.init () }

  let handle ctx st ev =
    let ra = run (module A) ctx st.a ev in
    let rb = run (module B) ctx st.b ev in
    let state' =
      {
        a = (match ra with Voted (s, _) | Abstained s | Dead s -> s);
        b = (match rb with Voted (s, _) | Abstained s | Dead s -> s);
      }
    in
    match (ra, rb) with
    | Voted (_, ca), Voted (_, cb) ->
        if ca = cb then (state', ca)
        else (state', ca @ [ Command.Log (name ^ ": versions diverged") ])
    | Voted (_, ca), (Dead _ | Abstained _) -> (state', ca)
    | (Dead _ | Abstained _), Voted (_, cb) -> (state', cb)
    | Abstained _, Abstained _ -> (state', [])
    | Dead _, (Dead _ | Abstained _) | Abstained _, Dead _ ->
        failwith (name ^ ": every version crashed on this event")
end
