lib/openflow/message.ml: Action Format Ofp_match Packet Types
