test/t_match.ml: Alcotest Buf List Ofp_match Openflow Packet QCheck2 QCheck_alcotest T_util
