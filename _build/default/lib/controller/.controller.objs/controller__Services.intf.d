lib/controller/services.mli: App_sig Event Netsim Openflow Types
