lib/apps/load_balancer.ml: Action App_sig Command Controller Event Int List Map Message Ofp_match Openflow Option Packet Types
