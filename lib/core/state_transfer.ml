module Chunk_store = Checkpoint.Chunk_store

(* A shipped replica state: everything a successor controller needs to
   resume exactly where the shipper was after dispatching the log entry
   at [commit_index]. App snapshots travel as chunk-store manifests so
   steady-state ships move only changed chunks; [next_xid] and the shadow
   tables make the successor's wire behaviour a seamless continuation of
   the shipper's (switch-side xid dedup keeps working, resyncs keep their
   intent). *)
type snapshot = {
  commit_index : int;
  next_xid : int;
  apps : (string * Chunk_store.manifest) list;
  shadows : (Openflow.Types.switch_id * Netsim.Flow_entry.t list) list;
  pending : (Openflow.Types.switch_id * Openflow.Message.t) list;
}

type t = {
  store : Chunk_store.t;
  (* app -> manifest of the latest ship; kept so superseded manifests can
     be released only after their successors hold the shared chunks. *)
  mutable shipped : (string * Chunk_store.manifest) list;
  mutable n_ships : int;
  mutable n_shipped_bytes : int;
}

let create () =
  { store = Chunk_store.create (); shipped = []; n_ships = 0; n_shipped_bytes = 0 }

let ship t ~commit_index rt =
  let apps =
    List.map
      (fun box ->
        let manifest, w = Chunk_store.store t.store (Sandbox.snapshot_bytes box) in
        t.n_shipped_bytes <- t.n_shipped_bytes + w.Chunk_store.written_bytes;
        (Sandbox.name box, manifest))
      (Runtime.sandboxes rt)
  in
  (* Release the superseded manifests only after the fresh ones hold
     their references, so chunks shared across ships survive the swap. *)
  let previous = t.shipped in
  t.shipped <- apps;
  List.iter (fun (_, m) -> Chunk_store.release t.store m) previous;
  t.n_ships <- t.n_ships + 1;
  let next_xid =
    match Runtime.netlog rt with Some nl -> Netlog.next_xid nl | None -> 1
  in
  let shadows, pending =
    match Runtime.reliable rt with
    | Some rel -> (Reliable.export_shadows rel, Reliable.export_pending rel)
    | None -> ([], [])
  in
  { commit_index; next_xid; apps; shadows; pending }

let restore t snapshot rt =
  List.iter
    (fun box ->
      match List.assoc_opt (Sandbox.name box) snapshot.apps with
      | Some manifest ->
          Sandbox.restore_bytes box (Chunk_store.materialize t.store manifest)
      | None -> ())
    (Runtime.sandboxes rt);
  match Runtime.reliable rt with
  | Some rel ->
      Reliable.import_shadows rel snapshot.shadows;
      Reliable.import_pending rel snapshot.pending
  | None -> ()

let ships t = t.n_ships
let shipped_bytes t = t.n_shipped_bytes
let store t = t.store
