open Openflow
open Netsim
module Services = Controller.Services
module Event = Controller.Event

let test_handshake_produces_switch_up_and_links () =
  let _, _, services, events = T_util.net_with_services (Topo_gen.linear 3) in
  let ups =
    List.filter (function Event.Switch_up _ -> true | _ -> false) events
  in
  T_util.checki "three switch_up events" 3 (List.length ups);
  (* 2 physical inter-switch links. *)
  let link_ups =
    List.filter (function Event.Link_up _ -> true | _ -> false) events
  in
  T_util.checki "two discovered links" 2 (List.length link_ups);
  T_util.checki "live_links lists both directions" 4
    (List.length (Services.live_links services));
  Alcotest.(check (list int)) "connected switches" [ 1; 2; 3 ]
    (Services.connected_switches services)

let test_link_down_event_derived_once () =
  let _, net, services, _ = T_util.net_with_services (Topo_gen.linear 2) in
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  let events = Net.poll net |> List.concat_map (Services.ingest services) in
  let downs =
    List.filter (function Event.Link_down _ -> true | _ -> false) events
  in
  T_util.checki "exactly one link_down despite two port_status" 1
    (List.length downs);
  T_util.checki "no live links left" 0 (List.length (Services.live_links services))

let test_link_up_rediscovery () =
  let _, net, services, _ = T_util.net_with_services (Topo_gen.linear 2) in
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  ignore (Net.poll net |> List.concat_map (Services.ingest services));
  Net.apply_fault net (Net.Link_up (Topology.Switch 1, Topology.Switch 2));
  let events = Net.poll net |> List.concat_map (Services.ingest services) in
  T_util.checki "one link_up rediscovered" 1
    (List.length (List.filter (function Event.Link_up _ -> true | _ -> false) events));
  T_util.checki "live links restored" 2 (List.length (Services.live_links services))

let test_switch_down_removes_links_and_registration () =
  let _, net, services, _ = T_util.net_with_services (Topo_gen.linear 3) in
  Net.apply_fault net (Net.Switch_down 2);
  let events = Net.poll net |> List.concat_map (Services.ingest services) in
  T_util.checkb "switch_down event" true
    (List.exists (function Event.Switch_down 2 -> true | _ -> false) events);
  Alcotest.(check (list int)) "s2 deregistered" [ 1; 3 ]
    (Services.connected_switches services);
  T_util.checki "its links are gone" 0 (List.length (Services.live_links services))

let test_host_learning () =
  let _, net, services, _ =
    T_util.net_with_services (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  T_util.checkb "unknown before traffic" true
    (Services.host_location services (Types.mac_of_host 1) = None);
  Net.inject net 1 (T_util.tcp_packet 1 2);
  ignore (Net.poll net |> List.concat_map (Services.ingest services));
  (match Services.host_location services (Types.mac_of_host 1) with
  | Some (sid, port) ->
      T_util.checki "learned switch" 1 sid;
      T_util.checki "learned port" 100 port
  | None -> Alcotest.fail "h1 should be learned from its packet-in")

let test_no_learning_on_core_ports () =
  let _, net, services, _ =
    T_util.net_with_services (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  (* Force the packet to traverse to s2 (flood at s1), producing a
     packet-in at s2 whose ingress is an inter-switch port. *)
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add Ofp_match.any [ Action.Output Types.port_flood ]))));
  Net.inject net 1 (T_util.tcp_packet 1 2);
  ignore (Net.poll net |> List.concat_map (Services.ingest services));
  (match Services.host_location services (Types.mac_of_host 1) with
  | Some (sid, _) -> T_util.checki "still located at its edge switch" 1 sid
  | None ->
      (* Acceptable: only the s2 copy punted, and s2 must not learn h1 on a
         core port. *)
      ())

let test_context_snapshot () =
  let _, _, services, _ = T_util.net_with_services (Topo_gen.star 2) in
  let ctx = Services.context services in
  Alcotest.(check (list int)) "context switches" [ 1; 2; 3 ]
    (Controller.App_sig.switches ctx);
  T_util.checkb "hub has ports" true (Controller.App_sig.switch_ports ctx 1 <> [])

let suite =
  [
    Alcotest.test_case "handshake and discovery" `Quick test_handshake_produces_switch_up_and_links;
    Alcotest.test_case "link_down derived once" `Quick test_link_down_event_derived_once;
    Alcotest.test_case "link rediscovery" `Quick test_link_up_rediscovery;
    Alcotest.test_case "switch death cleans up" `Quick test_switch_down_removes_links_and_registration;
    Alcotest.test_case "device manager learns hosts" `Quick test_host_learning;
    Alcotest.test_case "no learning on core ports" `Quick test_no_learning_on_core_ports;
    Alcotest.test_case "context view" `Quick test_context_snapshot;
  ]
