open Openflow
open Netsim

let pkt = Packet.tcp ~src_host:1 ~dst_host:2 ()

let fresh () = Sw.create ~id:1 ~port_nos:[ 1; 2; 3 ]

(* Distinct requests need distinct xids now that switches dedup
   state-altering messages by xid (retransmission suppression). *)
let send ?(xid = 5) sw payload =
  Sw.handle_message sw ~now:0. (Message.message ~xid payload)

let test_miss_buffers_and_punts () =
  let sw = fresh () in
  let fwd = Sw.process_packet sw ~now:0. ~in_port:1 pkt in
  T_util.checkb "no transmits" true (fwd.Sw.transmits = []);
  (match fwd.Sw.punts with
  | [ pi ] ->
      T_util.checkb "no_match reason" true (pi.Message.pi_reason = Message.No_match);
      T_util.checkb "buffered" true (pi.Message.pi_buffer_id <> None);
      T_util.checki "ingress port" 1 pi.Message.pi_in_port
  | _ -> Alcotest.fail "expected one punt");
  T_util.checkb "not matched" false fwd.Sw.matched

let test_match_forwards_and_counts () =
  let sw = fresh () in
  ignore
    (send sw
       (Message.Flow_mod (Message.flow_add Ofp_match.any [ Action.Output 2 ])));
  let fwd = Sw.process_packet sw ~now:0. ~in_port:1 pkt in
  Alcotest.(check (list int)) "forwarded to port 2" [ 2 ]
    (List.map snd fwd.Sw.transmits);
  (match Flow_table.entries sw.Sw.table with
  | [ e ] ->
      T_util.checki "packet counter" 1 e.Flow_entry.packet_count;
      T_util.checki "byte counter" (Packet.size pkt) e.Flow_entry.byte_count
  | _ -> Alcotest.fail "one entry");
  let p = Option.get (Sw.port sw 1) in
  T_util.checki "rx counted" 1 p.Sw.rx_packets

let test_flood_excludes_ingress () =
  let sw = fresh () in
  ignore
    (send sw
       (Message.Flow_mod
          (Message.flow_add Ofp_match.any [ Action.Output Types.port_flood ])));
  let fwd = Sw.process_packet sw ~now:0. ~in_port:2 pkt in
  Alcotest.(check (list int)) "flood to all but ingress" [ 1; 3 ]
    (List.sort compare (List.map snd fwd.Sw.transmits))

let test_flood_skips_down_ports () =
  let sw = fresh () in
  ignore (Sw.set_port sw 3 ~up:false);
  ignore
    (send sw
       (Message.Flow_mod
          (Message.flow_add Ofp_match.any [ Action.Output Types.port_flood ])));
  let fwd = Sw.process_packet sw ~now:0. ~in_port:2 pkt in
  Alcotest.(check (list int)) "down port skipped" [ 1 ]
    (List.map snd fwd.Sw.transmits)

let test_output_to_down_port_drops () =
  let sw = fresh () in
  ignore (Sw.set_port sw 2 ~up:false);
  ignore
    (send sw
       (Message.Flow_mod (Message.flow_add Ofp_match.any [ Action.Output 2 ])));
  let fwd = Sw.process_packet sw ~now:0. ~in_port:1 pkt in
  T_util.checkb "copy dropped" true (fwd.Sw.transmits = []);
  T_util.checki "tx_dropped counted" 1 (Option.get (Sw.port sw 2)).Sw.tx_dropped

let test_output_to_controller_punts () =
  let sw = fresh () in
  ignore
    (send sw
       (Message.Flow_mod
          (Message.flow_add Ofp_match.any [ Action.Output Types.port_controller ])));
  let fwd = Sw.process_packet sw ~now:0. ~in_port:1 pkt in
  match fwd.Sw.punts with
  | [ pi ] ->
      T_util.checkb "reason action" true
        (pi.Message.pi_reason = Message.Action_to_controller)
  | _ -> Alcotest.fail "expected a punt"

let test_packet_out_releases_buffer () =
  let sw = fresh () in
  let fwd = Sw.process_packet sw ~now:0. ~in_port:1 pkt in
  let buffer_id =
    match fwd.Sw.punts with
    | [ pi ] -> Option.get pi.Message.pi_buffer_id
    | _ -> Alcotest.fail "expected punt"
  in
  let replies, fwd2 =
    send sw
      (Message.Packet_out
         {
           po_buffer_id = Some buffer_id;
           po_in_port = Some 1;
           po_actions = [ Action.Output 3 ];
           po_packet = None;
         })
  in
  T_util.checkb "no replies" true (replies = []);
  Alcotest.(check (list int)) "buffered packet sent" [ 3 ]
    (List.map snd fwd2.Sw.transmits);
  (* Second release of the same buffer must fail: the buffer is gone. A
     fresh xid marks this as a new request, not a retransmission. *)
  let replies2, fwd3 =
    send ~xid:6 sw
      (Message.Packet_out
         {
           po_buffer_id = Some buffer_id;
           po_in_port = Some 1;
           po_actions = [ Action.Output 3 ];
           po_packet = None;
         })
  in
  T_util.checkb "stale buffer errors" true
    (match replies2 with
    | [ { Message.payload = Message.Error _; _ } ] -> true
    | _ -> false);
  T_util.checkb "nothing transmitted" true (fwd3.Sw.transmits = [])

let test_flow_mod_applies_to_buffer () =
  let sw = fresh () in
  let fwd = Sw.process_packet sw ~now:0. ~in_port:1 pkt in
  let buffer_id =
    match fwd.Sw.punts with
    | [ pi ] -> Option.get pi.Message.pi_buffer_id
    | _ -> Alcotest.fail "expected punt"
  in
  let fm = Message.flow_add Ofp_match.any [ Action.Output 2 ] in
  let _, fwd2 =
    send sw (Message.Flow_mod { fm with Message.buffer_id = Some buffer_id })
  in
  Alcotest.(check (list int)) "buffered packet forwarded by new rule" [ 2 ]
    (List.map snd fwd2.Sw.transmits)

let test_barrier_echo_features () =
  let sw = fresh () in
  (match send sw Message.Barrier_request with
  | [ { Message.payload = Message.Barrier_reply; xid = 5 } ], _ -> ()
  | _ -> Alcotest.fail "barrier reply with same xid expected");
  (match send sw (Message.Echo_request (Bytes.of_string "x")) with
  | [ { Message.payload = Message.Echo_reply b; _ } ], _ ->
      Alcotest.(check string) "echo payload" "x" (Bytes.to_string b)
  | _ -> Alcotest.fail "echo reply expected");
  match send sw Message.Features_request with
  | [ { Message.payload = Message.Features_reply f; _ } ], _ ->
      T_util.checki "dpid" 1 f.Message.datapath_id;
      T_util.checki "ports" 3 (List.length f.Message.ports)
  | _ -> Alcotest.fail "features reply expected"

let test_flow_stats_filtering () =
  let sw = fresh () in
  ignore
    (send sw
       (Message.Flow_mod
          (Message.flow_add (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ])));
  ignore
    (send ~xid:6 sw
       (Message.Flow_mod
          (Message.flow_add (Ofp_match.make ~tp_dst:443 ()) [ Action.Output 2 ])));
  match
    send sw
      (Message.Stats_request (Message.Flow_stats_request (Ofp_match.make ~tp_dst:80 ())))
  with
  | [ { Message.payload = Message.Stats_reply (Message.Flow_stats_reply stats); _ } ], _
    ->
      T_util.checki "only subsumed flows reported" 1 (List.length stats)
  | _ -> Alcotest.fail "flow stats reply expected"

let test_delete_notifies () =
  let sw = fresh () in
  ignore
    (send sw
       (Message.Flow_mod
          (Message.flow_add ~notify_when_removed:true
             (Ofp_match.make ~tp_dst:80 ())
             [ Action.Output 1 ])));
  match
    send ~xid:6 sw
      (Message.Flow_mod (Message.flow_delete (Ofp_match.make ~tp_dst:80 ())))
  with
  | [ { Message.payload = Message.Flow_removed fr; _ } ], _ ->
      T_util.checkb "delete reason" true (fr.Message.fr_reason = Message.Removed_delete)
  | _ -> Alcotest.fail "flow removed notification expected"

let test_down_switch_errors () =
  let sw = fresh () in
  sw.Sw.up <- false;
  match send sw Message.Barrier_request with
  | [ { Message.payload = Message.Error _; _ } ], _ -> ()
  | _ -> Alcotest.fail "down switch must error"

let test_expiry_notification () =
  let sw = fresh () in
  ignore
    (send sw
       (Message.Flow_mod
          (Message.flow_add ~hard_timeout:5 ~notify_when_removed:true
             Ofp_match.any [ Action.Output 1 ])));
  T_util.checki "no expiry yet" 0 (List.length (Sw.expire_flows sw ~now:4.));
  match Sw.expire_flows sw ~now:5. with
  | [ { Message.payload = Message.Flow_removed fr; _ } ] ->
      T_util.checkb "hard reason" true (fr.Message.fr_reason = Message.Removed_hard)
  | _ -> Alcotest.fail "expiry notification expected"

(* Property: the xid dedup window makes delivery idempotent. Any
   duplication pattern of a message sequence — every duplicate arriving
   some time after its original, as retransmission guarantees — leaves
   the flow table exactly as exactly-once delivery would. *)
let prop_dedup_idempotent =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) T_util.Gen.flow_mod)
        (list_size (int_bound 12) (pair (int_bound 100) (int_bound 100))))
  in
  QCheck2.Test.make ~name:"any duplication pattern equals exactly-once"
    ~count:300 gen (fun (fms, dups) ->
      (* Non-zero unique xids: xid 0 opts out of deduplication. *)
      let msgs =
        List.mapi
          (fun i fm -> Message.message ~xid:(i + 1) (Message.Flow_mod fm))
          fms
      in
      let n = List.length msgs in
      (* Build the duplicated delivery sequence: start from the originals
         in order and insert each duplicate at any point after its
         original's first occurrence. *)
      let with_dups =
        List.fold_left
          (fun seq (which, pos) ->
            let m = List.nth msgs (which mod n) in
            let first =
              let rec idx i = function
                | [] -> 0
                | x :: _ when x == m || x = m -> i
                | _ :: rest -> idx (i + 1) rest
              in
              idx 0 seq
            in
            let at = first + 1 + (pos mod (List.length seq - first)) in
            let rec insert i = function
              | rest when i = at -> m :: rest
              | [] -> [ m ]
              | x :: rest -> x :: insert (i + 1) rest
            in
            insert 0 seq)
          msgs dups
      in
      let deliver sw seq =
        List.iter (fun m -> ignore (Sw.handle_message sw ~now:0. m)) seq
      in
      let once = fresh () and dup = fresh () in
      deliver once msgs;
      deliver dup with_dups;
      Flow_table.entries once.Sw.table = Flow_table.entries dup.Sw.table)

let suite =
  [
    Alcotest.test_case "table miss buffers and punts" `Quick test_miss_buffers_and_punts;
    Alcotest.test_case "match forwards and counts" `Quick test_match_forwards_and_counts;
    Alcotest.test_case "flood excludes ingress" `Quick test_flood_excludes_ingress;
    Alcotest.test_case "flood skips down ports" `Quick test_flood_skips_down_ports;
    Alcotest.test_case "down port drops copy" `Quick test_output_to_down_port_drops;
    Alcotest.test_case "controller output punts" `Quick test_output_to_controller_punts;
    Alcotest.test_case "packet_out releases buffer once" `Quick test_packet_out_releases_buffer;
    Alcotest.test_case "flow_mod applies to buffer" `Quick test_flow_mod_applies_to_buffer;
    Alcotest.test_case "barrier/echo/features" `Quick test_barrier_echo_features;
    Alcotest.test_case "flow stats filter" `Quick test_flow_stats_filtering;
    Alcotest.test_case "delete notifies" `Quick test_delete_notifies;
    Alcotest.test_case "down switch errors" `Quick test_down_switch_errors;
    Alcotest.test_case "timeout expiry notifies" `Quick test_expiry_notification;
    QCheck_alcotest.to_alcotest prop_dedup_idempotent;
  ]
