(** Growable big-endian byte buffers: the serialization substrate shared by
    the OpenFlow wire codec and the AppVisor RPC channel.

    All multi-byte quantities are big-endian (network byte order), matching
    the OpenFlow wire format. *)

(** {1 Writing} *)

type writer
(** A growable output buffer. *)

val writer : ?capacity:int -> unit -> writer
(** [writer ()] is a fresh empty buffer. [capacity] is the initial
    allocation hint (default 64 bytes). *)

val length : writer -> int
(** Number of bytes written so far. *)

val u8 : writer -> int -> unit
(** Append one byte. The value is masked to 8 bits. *)

val u16 : writer -> int -> unit
(** Append a 16-bit big-endian value (masked). *)

val u32 : writer -> int -> unit
(** Append a 32-bit big-endian value (masked). *)

val u48 : writer -> int -> unit
(** Append a 48-bit big-endian value (masked); used for MAC addresses. *)

val u64 : writer -> int64 -> unit
(** Append a 64-bit big-endian value; used for datapath ids and cookies. *)

val raw : writer -> bytes -> unit
(** Append raw bytes verbatim. *)

val pad : writer -> int -> unit
(** Append [n] zero bytes. *)

val patch_u16 : writer -> pos:int -> int -> unit
(** Overwrite the 16-bit value at offset [pos]; used to back-patch the
    OpenFlow header length field once a message body is known. *)

val contents : writer -> bytes
(** A copy of everything written so far. *)

val reset : writer -> unit
(** Rewind to empty without releasing the backing store: a reused writer
    keeps its high-water-mark capacity and stops allocating once it has
    grown to its largest frame. The hot-path codec scratch buffers are
    built on this. *)

(** {1 Reading} *)

type reader
(** A cursor over immutable input bytes. *)

exception Underflow
(** Raised by all reads that run past the end of input. *)

val reader : ?pos:int -> ?len:int -> bytes -> reader
(** [reader b] reads from [b]; [pos]/[len] restrict the window. *)

val pos : reader -> int
(** Current cursor offset relative to the start of the window. *)

val remaining : reader -> int
(** Bytes left before the end of the window. *)

val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int
val read_u48 : reader -> int
val read_u64 : reader -> int64

val read_raw : reader -> int -> bytes
(** [read_raw r n] consumes and returns the next [n] bytes. *)

val skip : reader -> int -> unit
(** Advance the cursor by [n] bytes. *)

val sub_reader : reader -> int -> reader
(** [sub_reader r n] consumes the next [n] bytes of [r] and returns a
    reader windowed onto exactly those bytes, sharing the backing store
    (no copy). Raises {!Underflow} if fewer than [n] bytes remain — the
    same torn-frame behaviour as [read_raw]. *)

val reader_of_writer : writer -> reader
(** A zero-copy reader over everything written so far. The reader borrows
    the writer's backing store: it is valid only until the next write or
    {!reset} on the writer. *)
