test/t_stats.ml: Alcotest List QCheck2 QCheck_alcotest T_util Workload
